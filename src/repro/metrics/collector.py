"""The metrics collector wired into protocol callbacks by the drivers.

One :class:`MetricsCollector` instance observes a whole cluster run. The
drivers connect it to each node:

* sender admission — :meth:`on_offered` / :meth:`on_admitted` /
  :meth:`on_rejected`;
* protocol delivery callback — :meth:`on_deliver`;
* protocol drop callback — :meth:`on_drop`;
* per-round gauges — :meth:`sample_gauge` (allowed rate, avgAge,
  minBuff estimate, buffer occupancy).

Analysis (reliability, atomicity, rate series) lives in
:mod:`repro.metrics.delivery`; this module only records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.gossip.events import EventId
from repro.gossip.protocol import NodeId
from repro.metrics.rates import BucketSeries, GaugeSeries

__all__ = ["CountingMessageRecord", "MessageRecord", "MetricsCollector"]


@dataclass(slots=True)
class MessageRecord:
    """Lifecycle of one broadcast message."""

    origin: NodeId
    broadcast_time: float
    receivers: set[NodeId] = field(default_factory=set)
    duplicate_deliveries: int = 0
    first_delivery: Optional[float] = None
    last_delivery: Optional[float] = None

    @property
    def receiver_count(self) -> int:
        """How many distinct nodes delivered this message."""
        return len(self.receivers)

    def note_delivery(self, node: NodeId, time: float) -> bool:
        """Record a delivery; returns True if this receiver was new."""
        if node in self.receivers:
            self.duplicate_deliveries += 1
            return False
        self.receivers.add(node)
        if self.first_delivery is None:
            self.first_delivery = time
        self.last_delivery = time
        return True

    def copy(self) -> "MessageRecord":
        return MessageRecord(
            origin=self.origin,
            broadcast_time=self.broadcast_time,
            receivers=set(self.receivers),
            duplicate_deliveries=self.duplicate_deliveries,
            first_delivery=self.first_delivery,
            last_delivery=self.last_delivery,
        )

    def merge(self, other: "MessageRecord") -> None:
        """Fold another shard's view of the same message into this one."""
        self.receivers |= other.receivers
        self.duplicate_deliveries += other.duplicate_deliveries
        if other.first_delivery is not None:
            if self.first_delivery is None or other.first_delivery < self.first_delivery:
                self.first_delivery = other.first_delivery
        if other.last_delivery is not None:
            if self.last_delivery is None or other.last_delivery > self.last_delivery:
                self.last_delivery = other.last_delivery


@dataclass(slots=True)
class CountingMessageRecord:
    """Aggregate-mode message lifecycle: a receiver *count*, not a set.

    Used when the collector runs with ``aggregate=True`` so 10k–100k-node
    runs don't allocate one set entry per (message, receiver). It trusts
    the protocol layer's per-receiver deduplication — every delivery it
    is told about counts as a new receiver. (The one place that dedup can
    lie is an undersized dedup store re-admitting an event a node already
    saw; sized per the paper's guidance this does not occur, and the
    exact per-receiver mode remains the reference.)
    """

    origin: NodeId
    broadcast_time: float
    receiver_count: int = 0
    duplicate_deliveries: int = 0
    first_delivery: Optional[float] = None
    last_delivery: Optional[float] = None

    def note_delivery(self, node: NodeId, time: float) -> bool:
        self.receiver_count += 1
        if self.first_delivery is None:
            self.first_delivery = time
        self.last_delivery = time
        return True

    def note_bulk(self, count: int, time: float) -> None:
        """Record ``count`` first deliveries happening at one instant."""
        self.receiver_count += count
        if self.first_delivery is None:
            self.first_delivery = time
        self.last_delivery = time

    def copy(self) -> "CountingMessageRecord":
        return CountingMessageRecord(
            origin=self.origin,
            broadcast_time=self.broadcast_time,
            receiver_count=self.receiver_count,
            duplicate_deliveries=self.duplicate_deliveries,
            first_delivery=self.first_delivery,
            last_delivery=self.last_delivery,
        )

    def merge(self, other: "CountingMessageRecord") -> None:
        self.receiver_count += other.receiver_count
        self.duplicate_deliveries += other.duplicate_deliveries
        if other.first_delivery is not None:
            if self.first_delivery is None or other.first_delivery < self.first_delivery:
                self.first_delivery = other.first_delivery
        if other.last_delivery is not None:
            if self.last_delivery is None or other.last_delivery > self.last_delivery:
                self.last_delivery = other.last_delivery


class MetricsCollector:
    """Records everything the experiments measure.

    ``aggregate=True`` selects the aggregate-only mode for very large
    groups: message records count receivers instead of holding sets
    (:class:`CountingMessageRecord`), per-node gauges are not recorded
    (``sample_gauge`` is a no-op), and bulk deliveries can be folded in
    one call (:meth:`on_deliver_bulk`). Everything else — admission
    series, drop series, pickling, and merging shards of the *same* mode
    — behaves identically.
    """

    def __init__(self, bucket_width: float = 1.0, aggregate: bool = False) -> None:
        self.bucket_width = bucket_width
        self.aggregate = aggregate
        self.messages: dict[EventId, MessageRecord] = {}
        # point-event series
        self.offered = BucketSeries(bucket_width)
        self.admitted = BucketSeries(bucket_width)
        self.rejected = BucketSeries(bucket_width)
        self.deliveries = BucketSeries(bucket_width)
        self.drops_overflow = BucketSeries(bucket_width)
        self.drops_age_out = BucketSeries(bucket_width)
        self.drops_obsolete = BucketSeries(bucket_width)
        # drop ages (the congestion signal measured from the outside)
        self.drop_age_gauge = GaugeSeries(bucket_width)
        self.drop_ages: list[int] = []
        # named per-node gauges, indexed per name: name -> node -> series
        # (per-name lookups — gauge_mean, gauge_nodes — touch only that
        # name's bucket instead of scanning every (name, node) pair)
        self._gauges: dict[str, dict[NodeId, GaugeSeries]] = {}
        # counters
        self.duplicate_deliveries = 0
        # Deliveries observed before their admission was recorded. The
        # protocol delivers a broadcast to its own sender *inside*
        # broadcast(), i.e. before the Sender can call on_admitted, so
        # early deliveries are parked here and replayed on admission.
        self._early: dict[EventId, list[tuple[NodeId, float]]] = {}

    # ------------------------------------------------------------------
    # sender-side hooks
    # ------------------------------------------------------------------
    def on_offered(self, node: NodeId, time: float) -> None:
        """The application offered one broadcast (admitted or not)."""
        self.offered.add(time)

    def on_admitted(self, node: NodeId, event_id: EventId, time: float) -> None:
        """A broadcast passed admission control; start its record."""
        self.admitted.add(time)
        if event_id not in self.messages:
            record_cls = CountingMessageRecord if self.aggregate else MessageRecord
            self.messages[event_id] = record_cls(origin=node, broadcast_time=time)
        for early_node, early_time in self._early.pop(event_id, ()):
            self.on_deliver(early_node, event_id, early_time)

    def on_rejected(self, node: NodeId, time: float) -> None:
        """An offer was abandoned (bounded pending queue overflowed)."""
        self.rejected.add(time)

    # ------------------------------------------------------------------
    # protocol hooks (bound per node by the driver)
    # ------------------------------------------------------------------
    def on_deliver(self, node: NodeId, event_id: EventId, time: float) -> None:
        """A node delivered an event (deduplicated per receiver)."""
        record = self.messages.get(event_id)
        if record is None:
            # Not admitted (yet): either the sender's own in-broadcast
            # delivery racing its on_admitted call, or a message from an
            # uninstrumented source. Parked and replayed on admission.
            self._early.setdefault(event_id, []).append((node, time))
            return
        if record.note_delivery(node, time):
            self.deliveries.add(time)
        else:
            self.duplicate_deliveries += 1

    def on_deliver_bulk(self, event_id: EventId, count: int, time: float) -> None:
        """``count`` first deliveries of one event at one instant.

        Aggregate-mode fast path for bulk executors: one call per
        (event, instant) instead of one per receiver.
        """
        record = self.messages.get(event_id)
        if record is None:
            self._early.setdefault(event_id, []).extend([(None, time)] * count)
            return
        record.note_bulk(count, time)
        self.deliveries.add(time, count)

    def on_drop(self, node: NodeId, event_id: EventId, age: int, reason: str, time: float) -> None:
        """A buffer dropped an event; overflow drops feed the age signal."""
        if reason == "age_out":
            self.drops_age_out.add(time)
            return
        if reason == "obsolete":
            # semantic purging ([11]) is voluntary, not congestion — it
            # must not pollute the drop-age signal statistics
            self.drops_obsolete.add(time)
            return
        # overflow and resize evictions are the paper's "dropped messages"
        self.drops_overflow.add(time)
        self.drop_age_gauge.sample(time, age)
        self.drop_ages.append(age)

    # ------------------------------------------------------------------
    # gauges
    # ------------------------------------------------------------------
    def sample_gauge(self, name: str, node: NodeId, time: float, value: float) -> None:
        """Record one sample of a named per-node gauge."""
        if self.aggregate:
            return
        by_node = self._gauges.get(name)
        if by_node is None:
            by_node = self._gauges[name] = {}
        series = by_node.get(node)
        if series is None:
            series = by_node[node] = GaugeSeries(self.bucket_width)
        series.sample(time, value)

    def gauge(self, name: str, node: NodeId) -> Optional[GaugeSeries]:
        """The series for one (gauge, node), or None if never sampled."""
        by_node = self._gauges.get(name)
        return by_node.get(node) if by_node is not None else None

    def gauge_nodes(self, name: str) -> list[NodeId]:
        """All nodes that ever sampled the named gauge."""
        return list(self._gauges.get(name, ()))

    def gauge_mean(
        self, name: str, since: float = float("-inf"), until: float = float("inf")
    ) -> float:
        """Mean over all nodes' samples of a named gauge in a window."""
        total = 0.0
        count = 0
        for series in self._gauges.get(name, {}).values():
            m = series.mean(since, until)
            if m == m:  # not NaN
                total += m
                count += 1
        return total / count if count else float("nan")

    def gauge_mean_over(
        self,
        name: str,
        nodes,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> float:
        """Mean of a named gauge restricted to ``nodes`` (e.g. senders only)."""
        by_node = self._gauges.get(name, {})
        total = 0.0
        count = 0
        for node in nodes:
            series = by_node.get(node)
            if series is None:
                continue
            m = series.mean(since, until)
            if m == m:  # not NaN
                total += m
                count += 1
        return total / count if count else float("nan")

    # ------------------------------------------------------------------
    # sharded collection
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsCollector") -> None:
        """Fold another collector into this one.

        Collectors are plain data (picklable), so shards of one logical
        experiment — parallel seeds, or node subsets observed by separate
        workers — can each record locally and be reduced afterwards.
        Message records with the same :class:`EventId` are merged
        (receiver-set union, min/max delivery times); series and counters
        add. Event ids must be consistent across shards: shards of one
        observed run always are, and independent runs are only mergeable
        when their ids cannot collide (disjoint sender nodes). A
        detectable collision — an :class:`EventId` naming *different*
        broadcasts in the two shards (same (origin, seq), different
        origin or broadcast time) — raises ``ValueError`` rather than
        silently unioning unrelated messages; collisions whose broadcast
        schedules coincide exactly cannot be detected, which is why
        sender-disjointness is the caller's contract.
        """
        if other.bucket_width != self.bucket_width:
            raise ValueError("cannot merge collectors with different bucket widths")
        if other.aggregate != self.aggregate:
            raise ValueError(
                "cannot merge an aggregate-mode collector with a per-receiver "
                "one (receiver sets and counts are not reconcilable)"
            )
        for event_id, record in other.messages.items():
            mine = self.messages.get(event_id)
            if mine is not None and (
                mine.origin != record.origin
                or mine.broadcast_time != record.broadcast_time
            ):
                raise ValueError(
                    f"event id {event_id!r} names different broadcasts in the "
                    "two collectors (colliding shards — e.g. independent seeds "
                    "with the same senders); refusing to merge them"
                )
            if mine is None:
                self.messages[event_id] = record.copy()
            else:
                mine.merge(record)
        self.offered.merge(other.offered)
        self.admitted.merge(other.admitted)
        self.rejected.merge(other.rejected)
        self.deliveries.merge(other.deliveries)
        self.drops_overflow.merge(other.drops_overflow)
        self.drops_age_out.merge(other.drops_age_out)
        self.drops_obsolete.merge(other.drops_obsolete)
        self.drop_age_gauge.merge(other.drop_age_gauge)
        self.drop_ages.extend(other.drop_ages)
        for name, other_by_node in other._gauges.items():
            by_node = self._gauges.get(name)
            if by_node is None:
                by_node = self._gauges[name] = {}
            for node, series in other_by_node.items():
                mine_series = by_node.get(node)
                if mine_series is None:
                    mine_series = by_node[node] = GaugeSeries(self.bucket_width)
                mine_series.merge(series)
        self.duplicate_deliveries += other.duplicate_deliveries
        for event_id, early in other._early.items():
            self._early.setdefault(event_id, []).extend(early)
        # A shard that only observed receivers parks every delivery in
        # _early (admission lives in the origin's shard). Now that both
        # shards' records are present, replay anything that matched up —
        # the same reconciliation on_admitted performs within one shard.
        for event_id in [eid for eid in self._early if eid in self.messages]:
            for node, time in self._early.pop(event_id):
                self.on_deliver(node, event_id, time)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    @property
    def unknown_deliveries(self) -> int:
        """Deliveries never matched to an admission (instrumentation gap)."""
        return sum(len(v) for v in self._early.values())

    def messages_in_window(self, since: float, until: float) -> list[MessageRecord]:
        """Messages broadcast within [since, until)."""
        return [
            r for r in self.messages.values() if since <= r.broadcast_time < until
        ]

    def mean_drop_age(self, since: float = float("-inf"), until: float = float("inf")) -> float:
        """Mean age of overflow-dropped events in a window."""
        return self.drop_age_gauge.mean(since, until)
