"""The §2.3 calibration procedure (Figure 4).

For each buffer configuration, experimentally determine the maximum input
rate at which the system still delivers messages to at least an average
of 95% of the participants, and record the average age of the events
being dropped at that operating point. The paper's two observations:

* the maximum rate grows with buffer size (roughly linearly), and
* the drop age at the edge of congestion is the *same* for every buffer
  size — the constant ``τ`` (5.3 hops on the paper's testbed) that the
  adaptive mechanism uses as its congestion threshold.

The search is a bisection over the total offered load using the baseline
(unthrottled) protocol; reliability is monotone-decreasing in load, which
makes bisection sound up to simulation noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.experiments.harness import run_once, spec_for_profile
from repro.experiments.profiles import Profile
from repro.metrics.stats import mean

__all__ = ["CalibrationPoint", "CalibrationResult", "calibrate", "max_sustainable_rate"]

RELIABILITY_TARGET = 0.95


@dataclass(frozen=True, slots=True)
class CalibrationPoint:
    """Calibration outcome for one buffer size."""

    buffer_capacity: int
    max_rate: float  # maximum load meeting the reliability target
    drop_age_at_max: float  # mean drop age at that load (≈ τ)
    reliability_at_max: float  # achieved avg receiver fraction


@dataclass(frozen=True)
class CalibrationResult:
    """Figure 4: max sustainable rate per buffer size, plus ``τ``."""

    points: tuple[CalibrationPoint, ...]
    tau: float  # mean drop age across the congestion edges

    def max_rate_for(self, buffer_capacity: int) -> float:
        """Max sustainable rate for a buffer size (linear interpolation)."""
        pts = sorted(self.points, key=lambda p: p.buffer_capacity)
        if not pts:
            raise ValueError("empty calibration")
        if buffer_capacity <= pts[0].buffer_capacity:
            # Extrapolate through the origin: zero buffer, zero rate.
            return pts[0].max_rate * buffer_capacity / pts[0].buffer_capacity
        for lo, hi in zip(pts, pts[1:]):
            if buffer_capacity <= hi.buffer_capacity:
                span = hi.buffer_capacity - lo.buffer_capacity
                frac = (buffer_capacity - lo.buffer_capacity) / span
                return lo.max_rate + frac * (hi.max_rate - lo.max_rate)
        return pts[-1].max_rate  # beyond the sweep: clamp


def _reliability_at(profile: Profile, buffer_capacity: int, load: float) -> tuple[float, float]:
    """(avg receiver fraction, mean drop age) for the baseline at ``load``."""
    spec = spec_for_profile(
        profile, "lpbcast", buffer_capacity=buffer_capacity, offered_load=load
    )
    result = run_once(spec)
    return result.delivery.avg_receiver_fraction, result.drop_age_mean


def max_sustainable_rate(
    profile: Profile,
    buffer_capacity: int,
    target: float = RELIABILITY_TARGET,
    lo: float = 2.0,
    hi: Optional[float] = None,
    iterations: int = 7,
) -> CalibrationPoint:
    """Bisect the load axis for one buffer size.

    ``hi`` defaults to a generous multiple of the buffer size (the
    observed linear relation makes ``2·capacity`` a safe upper bracket).
    """
    if hi is None:
        hi = max(4.0 * lo, 2.0 * buffer_capacity / profile.gossip_period)
    rel_lo, age_lo = _reliability_at(profile, buffer_capacity, lo)
    if rel_lo < target:
        # Even the lowest probe fails: report the bracket floor.
        return CalibrationPoint(buffer_capacity, lo, age_lo, rel_lo)
    rel_hi, _age_hi = _reliability_at(profile, buffer_capacity, hi)
    if rel_hi >= target:
        return CalibrationPoint(buffer_capacity, hi, _age_hi, rel_hi)
    best_rate, best_rel, best_age = lo, rel_lo, age_lo
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        rel, age = _reliability_at(profile, buffer_capacity, mid)
        if rel >= target:
            lo = mid
            best_rate, best_rel = mid, rel
            if not math.isnan(age):
                best_age = age
        else:
            hi = mid
    return CalibrationPoint(buffer_capacity, best_rate, best_age, best_rel)


def calibrate(
    profile: Profile,
    buffer_sizes: Optional[tuple[int, ...]] = None,
    target: float = RELIABILITY_TARGET,
    iterations: int = 7,
) -> CalibrationResult:
    """Run the Figure 4 sweep and extract ``τ``.

    Drop ages at the congestion edge are averaged across buffer sizes;
    their spread being small *is* the paper's §2.3 result and is checked
    by the Figure 4 benchmark rather than assumed here.
    """
    sizes = buffer_sizes if buffer_sizes is not None else profile.buffer_sizes
    points = tuple(
        max_sustainable_rate(profile, b, target=target, iterations=iterations)
        for b in sizes
    )
    ages = [p.drop_age_at_max for p in points if not math.isnan(p.drop_age_at_max)]
    return CalibrationResult(points=points, tau=mean(ages))
