"""Experiment harness regenerating the paper's evaluation.

* :mod:`repro.experiments.profiles` — ``quick`` (default) and ``paper``
  scale profiles; select with ``REPRO_PROFILE=paper``.
* :mod:`repro.experiments.harness` — single-run specification/execution.
* :mod:`repro.experiments.calibrate` — the §2.3 procedure: per buffer
  size, find the maximum input rate keeping average delivery ≥95% and
  record the drop age at that edge (Figure 4, and the source of ``τ``).
* :mod:`repro.experiments.figures` — one function per paper figure.
* :mod:`repro.experiments.sweep` — sharded parallel spec execution
  (``--jobs`` on the CLI); bit-identical to serial runs.
* :mod:`repro.experiments.report` — ASCII tables for benchmark output.
"""

from repro.experiments.calibrate import CalibrationPoint, CalibrationResult, calibrate
from repro.experiments.figures import (
    figure2,
    figure4,
    figure6,
    figure7,
    figure8,
    figure9,
    buffer_sweep_comparison,
)
from repro.experiments.harness import RunResult, RunSpec, run_once
from repro.experiments.profiles import PAPER, QUICK, Profile, get_profile
from repro.experiments.replication import (
    MetricSummary,
    replicate,
    summarize_metric,
    t_interval,
)
from repro.experiments.report import render_series, render_sparkline, render_table
from repro.experiments.scalability import ScalePoint, scale_sweep
from repro.experiments.sweep import merged_metrics, run_specs

__all__ = [
    "Profile",
    "QUICK",
    "PAPER",
    "get_profile",
    "RunSpec",
    "RunResult",
    "run_once",
    "run_specs",
    "merged_metrics",
    "calibrate",
    "CalibrationPoint",
    "CalibrationResult",
    "figure2",
    "figure4",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "buffer_sweep_comparison",
    "render_table",
    "render_series",
    "render_sparkline",
    "replicate",
    "summarize_metric",
    "t_interval",
    "MetricSummary",
    "scale_sweep",
    "ScalePoint",
]
