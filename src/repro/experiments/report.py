"""ASCII rendering of experiment results.

Benchmarks print these tables so a benchmark session's log *is* the
reproduced evaluation: one table per paper figure, with the same columns
the figure plots.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional, Sequence

__all__ = ["fmt", "render_table", "render_series", "render_sparkline"]


def fmt(value: Any, digits: int = 1) -> str:
    """Format one cell: floats rounded, NaN as '-', everything else str()."""
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        return f"{value:.{digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: Optional[str] = None,
    digits: int = 1,
) -> str:
    """Render a fixed-width table with a rule under the header."""
    str_rows = [[fmt(cell, digits) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def render_sparkline(
    series: Iterable[tuple[float, float]],
    title: Optional[str] = None,
    width: int = 60,
) -> str:
    """Render a (time, value) series as a one-line unicode sparkline.

    NaN samples render as spaces; the value range is printed alongside
    so the line is quantitatively readable in benchmark logs.
    """
    points = [(t, v) for t, v in series]
    values = [v for _, v in points if not math.isnan(v)]
    if not points or not values:
        return (title + "\n" if title else "") + "(no samples)"
    if len(points) > width:
        stride = len(points) / width
        points = [points[int(i * stride)] for i in range(width)]
    lo, hi = min(values), max(values)
    span = hi - lo
    chars = []
    for _, v in points:
        if math.isnan(v):
            chars.append(" ")
        elif span == 0:
            chars.append(_SPARK_LEVELS[0])
        else:
            idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
            chars.append(_SPARK_LEVELS[idx])
    t0, t1 = points[0][0], points[-1][0]
    line = (
        f"[{lo:.1f}..{hi:.1f}] {''.join(chars)} "
        f"(t={t0:.0f}..{t1:.0f}s)"
    )
    return (title + "\n" if title else "") + line


def render_series(
    series: Iterable[tuple[float, float]],
    title: Optional[str] = None,
    t_label: str = "t(s)",
    v_label: str = "value",
    digits: int = 2,
    every: int = 1,
) -> str:
    """Render a (time, value) series as a two-column table.

    ``every`` subsamples long series (keep one row in N) so benchmark
    logs stay readable.
    """
    rows = [row for i, row in enumerate(series) if i % max(1, every) == 0]
    return render_table([t_label, v_label], rows, title=title, digits=digits)
