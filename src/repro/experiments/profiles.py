"""Experiment scale profiles.

Two profiles are provided:

* ``quick`` — the default. 30 nodes, shorter horizons, a coarser sweep.
  Every figure's *shape* is visible; a full benchmark session runs in
  minutes on a laptop.
* ``paper`` — the paper's scale: 60 processes, the 30..180 buffer sweep,
  longer convergence horizons. Select with ``REPRO_PROFILE=paper``.
* ``mega`` — 10,000 processes for the columnar vector executor
  (:mod:`repro.sim.vector`). Keeps the paper's fanout of 4 and short
  horizons; meant for ``--dispatch vector`` scaling runs and the
  ``mega-flood`` scenario, not for the figure sweeps.
* ``giga`` — 100,000 processes for the multicore vector lane
  (:mod:`repro.sim.vector_parallel`). Shorter still; meant for
  ``--dispatch vector --shards N`` runs and the ``giga-flood``
  scenario.

The paper runs its testbed with a gossip period of 5 s; we default to
1 s so wall-clock-heavy sweeps stay tractable — all rates simply scale by
``1/T`` (DESIGN.md, substitutions). ``tau_hint`` and ``max_rate_hints``
are *measured* values from :func:`repro.experiments.calibrate.calibrate`
on this codebase, baked in so dependent figures do not have to re-run the
calibration; the Figure 4 benchmark recomputes and checks them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.gossip.config import SystemConfig

__all__ = ["Profile", "QUICK", "PAPER", "MEGA", "GIGA", "get_profile"]


@dataclass(frozen=True)
class Profile:
    """Scale parameters shared by all experiments."""

    name: str
    n_nodes: int
    fanout: int
    gossip_period: float
    n_senders: int
    duration: float  # total simulated seconds per run
    warmup: float  # discarded prefix (estimators converging)
    drain: float  # discarded suffix (messages still propagating)
    buffer_sizes: tuple[int, ...]  # the Figure 4/6/7/8 sweep
    input_rates: tuple[float, ...]  # the Figure 2 sweep (total offered)
    fig2_buffer: int  # static buffer for Figure 2
    offered_load: float  # total offered load for Figures 6/7/8
    max_age: int
    dedup_capacity: int
    seed: int
    tau_hint: float  # measured critical age (Figure 4 procedure)
    # Figure 9 dynamic-buffer scenario (paper §4, "Adaptation to Dynamic
    # Buffer Size"): at t1, `frac` of the nodes shrink from `base` to
    # `low`; at t2 they grow back, but only to `mid`.
    fig9_duration: float = 360.0
    fig9_t1: float = 120.0
    fig9_t2: float = 240.0
    fig9_base_buffer: int = 90
    fig9_low_buffer: int = 45
    fig9_mid_buffer: int = 60
    fig9_frac: float = 0.2
    fig9_offered: float = 60.0
    max_rate_hints: dict[int, float] = field(default_factory=dict)

    def system(self, buffer_capacity: Optional[int] = None) -> SystemConfig:
        """A :class:`SystemConfig` for this profile."""
        return SystemConfig(
            fanout=self.fanout,
            gossip_period=self.gossip_period,
            buffer_capacity=(
                buffer_capacity if buffer_capacity is not None else self.fig2_buffer
            ),
            dedup_capacity=self.dedup_capacity,
            max_age=self.max_age,
        )

    @property
    def measure_window(self) -> tuple[float, float]:
        """The steady-state window [warmup, duration - drain)."""
        return (self.warmup, self.duration - self.drain)

    def sender_ids(self) -> list[int]:
        """Sender placement: spread across the id space."""
        stride = max(1, self.n_nodes // self.n_senders)
        return [(i * stride) % self.n_nodes for i in range(self.n_senders)]


QUICK = Profile(
    name="quick",
    n_nodes=30,
    fanout=4,
    gossip_period=1.0,
    n_senders=6,
    duration=160.0,
    warmup=80.0,
    drain=20.0,
    buffer_sizes=(20, 30, 45, 60, 75, 90),
    input_rates=(10.0, 20.0, 30.0, 45.0, 60.0, 90.0),
    fig2_buffer=30,
    offered_load=60.0,
    max_age=10,
    dedup_capacity=4000,
    seed=2003,
    # Measured with calibrate(QUICK, iterations=6): drop ages at the
    # congestion edge were 4.42..4.49 across the whole sweep — the §2.3
    # constant-age observation reproduces; see EXPERIMENTS.md.
    tau_hint=4.46,
    fig9_duration=360.0,
    fig9_t1=120.0,
    fig9_t2=240.0,
    fig9_base_buffer=90,
    fig9_low_buffer=45,
    fig9_mid_buffer=60,
    fig9_frac=0.2,
    # Above the low/mid-phase capacity (~64 / ~85 msg/s), below the
    # base-phase capacity (~130 msg/s) — the paper's regime.
    fig9_offered=100.0,
    max_rate_hints={20: 28.7, 30: 42.8, 45: 63.9, 60: 85.0, 75: 106.1, 90: 129.9},
)

PAPER = Profile(
    name="paper",
    n_nodes=60,
    fanout=4,
    gossip_period=1.0,
    n_senders=10,
    duration=300.0,
    warmup=150.0,
    drain=30.0,
    buffer_sizes=(30, 60, 90, 120, 150, 180),
    input_rates=(20.0, 40.0, 60.0, 80.0, 100.0, 120.0),
    fig2_buffer=60,
    # Crosses the capacity line near buffer 120, as in the paper's
    # Figure 6 (their 30 msg/s at T=5s ≈ our 160 msg/s at T=1s).
    offered_load=160.0,
    max_age=12,
    dedup_capacity=8000,
    seed=2003,
    # Measured with calibrate(PAPER, iterations=6): drop ages at the
    # congestion edge were 5.21..5.26 across the 30..180 sweep — within
    # 1% of the paper's τ = 5.3 (see EXPERIMENTS.md).
    tau_hint=5.25,
    fig9_duration=450.0,
    fig9_t1=150.0,
    fig9_t2=300.0,
    fig9_base_buffer=90,
    fig9_low_buffer=45,
    fig9_mid_buffer=60,
    fig9_frac=0.2,
    # Above the low/mid-phase capacity (~61 / ~81 msg/s), below the
    # base-phase capacity (~122 msg/s).
    fig9_offered=100.0,
    max_rate_hints={
        30: 41.0,
        60: 81.3,
        90: 121.6,
        120: 161.9,
        150: 202.2,
        180: 242.5,
    },
)

MEGA = Profile(
    name="mega",
    n_nodes=10_000,
    # The paper's fanout. log-scaled fanouts (~13 at this size) multiply
    # per-round work 3x without changing what the scaling runs measure;
    # the vector executor's budget is quoted at the paper's setting.
    fanout=4,
    gossip_period=1.0,
    n_senders=4,
    duration=30.0,
    warmup=10.0,
    drain=5.0,
    buffer_sizes=(30, 60),
    input_rates=(4.0, 8.0),
    fig2_buffer=30,
    # Light absolute load: at 10k nodes even a handful of msg/s keeps
    # every buffer busy, and the interesting axis is group size.
    offered_load=6.0,
    max_age=8,
    dedup_capacity=80_000,
    seed=2003,
    tau_hint=4.46,  # reuse quick's measured value; figures unused here
)

GIGA = Profile(
    name="giga",
    n_nodes=100_000,
    fanout=4,  # the paper's setting, as in mega
    gossip_period=1.0,
    n_senders=4,
    duration=24.0,
    warmup=8.0,
    drain=4.0,
    buffer_sizes=(30, 60),
    input_rates=(4.0, 8.0),
    fig2_buffer=30,
    offered_load=6.0,
    max_age=8,
    dedup_capacity=800_000,
    seed=2003,
    tau_hint=4.46,  # reuse quick's measured value; figures unused here
)

_PROFILES = {"quick": QUICK, "paper": PAPER, "mega": MEGA, "giga": GIGA}


def get_profile(name: Optional[str] = None) -> Profile:
    """Resolve a profile by name, or from ``REPRO_PROFILE`` (default quick)."""
    if name is None:
        name = os.environ.get("REPRO_PROFILE", "quick")
    try:
        return _PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown profile {name!r}; choose from {sorted(_PROFILES)}"
        ) from None
