"""Command-line interface to the experiment harness.

Regenerate any of the paper's figures without writing code::

    python -m repro.experiments figure2
    python -m repro.experiments figure4 --iterations 5
    python -m repro.experiments figure7 --profile paper
    python -m repro.experiments figure9 -o fig9.txt
    python -m repro.experiments calibrate --buffers 30 60 90

Figures 6/7/8 share a buffer sweep; invoking several of them in one
process reuses it.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.experiments import figures
from repro.experiments.calibrate import calibrate as run_calibration
from repro.experiments.profiles import get_profile
from repro.experiments.report import render_series, render_table

__all__ = ["main", "build_parser"]

_SWEEP_CACHE: dict[str, tuple] = {}


def _sweep(profile):
    if profile.name not in _SWEEP_CACHE:
        _SWEEP_CACHE[profile.name] = figures.buffer_sweep_comparison(profile)
    return _SWEEP_CACHE[profile.name]


def _run_figure2(profile, args) -> str:
    result = figures.figure2(profile)
    return render_table(
        ["input rate", "msgs to >95% (%)", "avg receivers (%)", "drop age"],
        [
            (r.input_rate, r.atomicity_pct, r.avg_receiver_pct, r.drop_age)
            for r in result.rows
        ],
        title=f"Figure 2 (buffer={result.buffer_capacity}, {profile.name})",
    )


def _run_figure4(profile, args) -> str:
    result = run_calibration(profile, iterations=args.iterations)
    return render_table(
        ["buffer", "max rate", "drop age @max", "reliability @max"],
        [
            (p.buffer_capacity, p.max_rate, p.drop_age_at_max, p.reliability_at_max)
            for p in result.points
        ],
        title=f"Figure 4 ({profile.name}); tau = {result.tau:.2f}",
        digits=2,
    )


def _run_figure6(profile, args) -> str:
    result = figures.figure6(profile, _sweep(profile))
    return render_table(
        ["buffer", "offered", "allowed", "maximum"],
        [(r.buffer_capacity, r.offered, r.allowed, r.maximum) for r in result.rows],
        title=f"Figure 6 ({profile.name})",
    )


def _run_figure7(profile, args) -> str:
    result = figures.figure7(profile, _sweep(profile))
    return render_table(
        ["buffer", "in lpb", "in adpt", "out lpb", "out adpt", "da lpb", "da adpt"],
        [
            (
                r.buffer_capacity,
                r.input_lpbcast,
                r.input_adaptive,
                r.output_lpbcast,
                r.output_adaptive,
                r.drop_age_lpbcast,
                r.drop_age_adaptive,
            )
            for r in result.rows
        ],
        title=f"Figure 7 ({profile.name})",
    )


def _run_figure8(profile, args) -> str:
    result = figures.figure8(profile, _sweep(profile))
    return render_table(
        ["buffer", "recv lpb (%)", "recv adpt (%)", "atom lpb (%)", "atom adpt (%)"],
        [
            (
                r.buffer_capacity,
                r.avg_receiver_pct_lpbcast,
                r.avg_receiver_pct_adaptive,
                r.atomicity_pct_lpbcast,
                r.atomicity_pct_adaptive,
            )
            for r in result.rows
        ],
        title=f"Figure 8 ({profile.name})",
    )


def _run_figure9(profile, args) -> str:
    result = figures.figure9(profile)
    phases = ("base", "low", "mid")
    head = render_table(
        ["phase", "ideal", "allowed", "atom adpt (%)", "atom lpb (%)"],
        [
            (
                phases[i],
                result.ideal_rates[i],
                result.allowed_by_phase[i],
                100 * result.atomicity_adaptive_by_phase[i],
                100 * result.atomicity_lpbcast_by_phase[i],
            )
            for i in range(3)
        ],
        title=f"Figure 9 ({profile.name})",
    )
    tail = render_series(
        result.allowed_series,
        title="Figure 9(a) series",
        v_label="allowed (msg/s)",
        every=2,
    )
    return head + "\n\n" + tail


def _run_calibrate(profile, args) -> str:
    buffers = tuple(args.buffers) if args.buffers else None
    result = run_calibration(
        profile, buffer_sizes=buffers, iterations=args.iterations
    )
    lines = [
        f"buffer={p.buffer_capacity} max_rate={p.max_rate:.2f} "
        f"drop_age={p.drop_age_at_max:.2f} reliability={p.reliability_at_max:.3f}"
        for p in result.points
    ]
    lines.append(f"tau = {result.tau:.3f}")
    return "\n".join(lines)


_COMMANDS = {
    "figure2": _run_figure2,
    "figure4": _run_figure4,
    "figure6": _run_figure6,
    "figure7": _run_figure7,
    "figure8": _run_figure8,
    "figure9": _run_figure9,
    "calibrate": _run_calibrate,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "command",
        choices=sorted([*_COMMANDS, "all"]),
        help="which figure to regenerate ('all' runs every figure)",
    )
    parser.add_argument(
        "--profile",
        default=None,
        help="scale profile: quick (default) or paper; also via REPRO_PROFILE",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=5,
        help="bisection iterations for calibration-based figures",
    )
    parser.add_argument(
        "--buffers",
        type=int,
        nargs="*",
        default=None,
        help="buffer sizes for the calibrate command",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="also write the result to this file",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    profile = get_profile(args.profile)
    names = sorted(_COMMANDS) if args.command == "all" else [args.command]
    chunks = [_COMMANDS[name](profile, args) for name in names]
    text = "\n\n".join(chunks)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0
