"""Command-line interface to the experiment harness.

Regenerate any of the paper's figures, or run named scenarios, without
writing code::

    python -m repro.experiments figure2
    python -m repro.experiments figure4 --iterations 5
    python -m repro.experiments figure7 --profile paper
    python -m repro.experiments figure8 --jobs 4
    python -m repro.experiments figure9 -o fig9.txt
    python -m repro.experiments all --jobs 8 --json results.json
    python -m repro.experiments calibrate --buffers 30 60 90
    python -m repro.experiments list-scenarios
    python -m repro.experiments run-scenario correlated-loss flash-crowd
    python -m repro.experiments run-scenario --all --jobs 8
    python -m repro.experiments run-scenario rolling-churn --driver both --quick
    python -m repro.experiments run-scenario correlated-loss --driver process --quick
    python -m repro.experiments check-scenarios --all --quick
    python -m repro.experiments check-scenarios --all --quick --driver process
    python -m repro.experiments check-scenarios --all --quick --update-baselines
    python -m repro.experiments check-scenarios flash-crowd --quick
    python -m repro.experiments fuzz-scenarios --seed 7 --count 50 --jobs 4
    python -m repro.experiments fuzz-scenarios --seed 7 --only 12 --driver threaded
    python -m repro.experiments bisect-scenario --fuzz-seed 7 --index 12
    python -m repro.experiments bisect-scenario correlated-loss --quick

``--jobs N`` shards sweep-based figures and scenario matrices across N
worker processes; the numbers are identical to a serial run (every
simulation is seed-isolated), only the wall clock changes. ``--json
FILE`` additionally writes the raw result objects as machine-readable
JSON.

Figures 6/7/8 share a buffer sweep; invoking several of them in one
process reuses it. ``run-scenario --quick`` shrinks the profile to a
smoke scale (small group, short horizon) so any scenario answers in
seconds.

``check-scenarios`` is the regression gate: it runs scenarios, evaluates
their registered expectations (``ReliabilityAtLeast`` & co.), diffs the
metrics against the checked-in baselines under ``baselines/scenarios/``
(exact for the sim driver, tolerance-banded for threaded and process)
and exits
nonzero on a violated expectation, unexplained drift, or a missing
baseline. ``--update-baselines`` re-captures the snapshots instead —
that is the blessing workflow after an intentional behaviour change.
"""

from __future__ import annotations

import argparse
import json
from typing import Optional, Sequence

from repro.experiments import figures
from repro.experiments.calibrate import calibrate as run_calibration
from repro.experiments.profiles import get_profile
from repro.experiments.report import render_series, render_table
from repro.experiments.sweep import run_scenario_matrix, to_jsonable

__all__ = ["main", "build_parser"]

_SWEEP_CACHE: dict[str, tuple] = {}


def _sweep(profile, jobs: int = 1):
    if profile.name not in _SWEEP_CACHE:
        _SWEEP_CACHE[profile.name] = figures.buffer_sweep_comparison(profile, jobs=jobs)
    return _SWEEP_CACHE[profile.name]


def _run_figure2(profile, args):
    result = figures.figure2(profile, jobs=args.jobs)
    text = render_table(
        ["input rate", "msgs to >95% (%)", "avg receivers (%)", "drop age"],
        [
            (r.input_rate, r.atomicity_pct, r.avg_receiver_pct, r.drop_age)
            for r in result.rows
        ],
        title=f"Figure 2 (buffer={result.buffer_capacity}, {profile.name})",
    )
    return text, result


def _run_figure4(profile, args):
    result = run_calibration(profile, iterations=args.iterations)
    text = render_table(
        ["buffer", "max rate", "drop age @max", "reliability @max"],
        [
            (p.buffer_capacity, p.max_rate, p.drop_age_at_max, p.reliability_at_max)
            for p in result.points
        ],
        title=f"Figure 4 ({profile.name}); tau = {result.tau:.2f}",
        digits=2,
    )
    return text, result


def _run_figure6(profile, args):
    result = figures.figure6(profile, _sweep(profile, args.jobs))
    text = render_table(
        ["buffer", "offered", "allowed", "maximum"],
        [(r.buffer_capacity, r.offered, r.allowed, r.maximum) for r in result.rows],
        title=f"Figure 6 ({profile.name})",
    )
    return text, result


def _run_figure7(profile, args):
    result = figures.figure7(profile, _sweep(profile, args.jobs))
    text = render_table(
        ["buffer", "in lpb", "in adpt", "out lpb", "out adpt", "da lpb", "da adpt"],
        [
            (
                r.buffer_capacity,
                r.input_lpbcast,
                r.input_adaptive,
                r.output_lpbcast,
                r.output_adaptive,
                r.drop_age_lpbcast,
                r.drop_age_adaptive,
            )
            for r in result.rows
        ],
        title=f"Figure 7 ({profile.name})",
    )
    return text, result


def _run_figure8(profile, args):
    result = figures.figure8(profile, _sweep(profile, args.jobs))
    text = render_table(
        ["buffer", "recv lpb (%)", "recv adpt (%)", "atom lpb (%)", "atom adpt (%)"],
        [
            (
                r.buffer_capacity,
                r.avg_receiver_pct_lpbcast,
                r.avg_receiver_pct_adaptive,
                r.atomicity_pct_lpbcast,
                r.atomicity_pct_adaptive,
            )
            for r in result.rows
        ],
        title=f"Figure 8 ({profile.name})",
    )
    return text, result


def _run_figure9(profile, args):
    result = figures.figure9(profile)
    phases = ("base", "low", "mid")
    head = render_table(
        ["phase", "ideal", "allowed", "atom adpt (%)", "atom lpb (%)"],
        [
            (
                phases[i],
                result.ideal_rates[i],
                result.allowed_by_phase[i],
                100 * result.atomicity_adaptive_by_phase[i],
                100 * result.atomicity_lpbcast_by_phase[i],
            )
            for i in range(3)
        ],
        title=f"Figure 9 ({profile.name})",
    )
    tail = render_series(
        result.allowed_series,
        title="Figure 9(a) series",
        v_label="allowed (msg/s)",
        every=2,
    )
    return head + "\n\n" + tail, result


def _run_calibrate(profile, args):
    buffers = tuple(args.buffers) if args.buffers else None
    result = run_calibration(
        profile, buffer_sizes=buffers, iterations=args.iterations
    )
    lines = [
        f"buffer={p.buffer_capacity} max_rate={p.max_rate:.2f} "
        f"drop_age={p.drop_age_at_max:.2f} reliability={p.reliability_at_max:.3f}"
        for p in result.points
    ]
    lines.append(f"tau = {result.tau:.3f}")
    return "\n".join(lines), result


_COMMANDS = {
    "figure2": _run_figure2,
    "figure4": _run_figure4,
    "figure6": _run_figure6,
    "figure7": _run_figure7,
    "figure8": _run_figure8,
    "figure9": _run_figure9,
    "calibrate": _run_calibrate,
}


def _run_list_scenarios(profile, args):
    """Names, summaries, and per-driver condition coverage.

    The simulator models every condition a spec can carry by
    construction; the threaded driver's injected-vs-skipped split comes
    from :func:`repro.scenarios.runner.threaded_coverage`, so a parity
    regression (a condition the runtime stops lowering) is visible
    right here without running anything.
    """
    from repro.scenarios.registry import get_scenario, list_scenarios
    from repro.scenarios.runner import threaded_coverage

    rows = list_scenarios()
    width = max(len(name) for name, _ in rows)
    lines = []
    scenarios = []
    for name, summary in rows:
        spec = get_scenario(name, profile)
        injected, skipped = threaded_coverage(spec)
        total = len(injected) + len(skipped)
        lines.append(f"{name:<{width}}  {summary}")
        if total == 0:
            coverage = "conditions: none (clean network, workload only)"
        else:
            threaded = f"threaded injects {len(injected)}/{total}"
            if skipped:
                threaded += f", skips {len(skipped)}"
            coverage = f"conditions: {total} | sim injects all | {threaded}"
        lines.append(f"{'':<{width}}  {coverage}")
        for item in skipped:
            lines.append(f"{'':<{width}}    threaded skips: {item}")
        scenarios.append(
            {
                "name": name,
                "summary": summary,
                "conditions": total,
                "threaded_injected": list(injected),
                "threaded_skipped": list(skipped),
            }
        )
    return "\n".join(lines), {"scenarios": scenarios}


def _scenario_result_rows(results):
    return [
        (
            r.spec.scenario or r.spec.protocol,
            r.input_rate,
            r.output_rate,
            r.delivery.avg_receiver_pct,
            r.delivery.atomicity_pct,
            r.drop_age_mean,
        )
        for r in results
    ]


def _run_run_scenario(profile, args):
    from repro.scenarios.runner import run_scenario, smoke_profile

    if args.quick:
        profile = smoke_profile(profile)
    names = _resolve_scenario_names(args, "run-scenario")
    chunks = []
    payload: dict = {"profile": profile.name, "scenarios": list(names)}
    if args.driver in ("sim", "both"):
        results = run_scenario_matrix(
            names,
            profile=profile,
            jobs=args.jobs,
            dispatch=args.dispatch,
            horizon=args.horizon,
            shards=args.shards,
        )
        chunks.append(
            render_table(
                ["scenario", "in (msg/s)", "out (msg/s)", "avg recv (%)",
                 "atomicity (%)", "drop age"],
                _scenario_result_rows(results),
                title=f"Scenario matrix — sim driver ({profile.name}, "
                f"{args.dispatch} dispatch)",
                digits=2,
            )
        )
        payload["sim"] = results
        if args.dispatch == "vector":
            from repro.experiments.harness import (
                parallel_fallback_reason,
                spec_for_scenario,
                vector_fallback_reason,
            )
            from repro.scenarios.registry import get_scenario

            specs = {
                name: spec_for_scenario(
                    get_scenario(name, profile),
                    dispatch="vector",
                    horizon=args.horizon,
                    shards=args.shards,
                )
                for name in names
            }
            fallbacks = {
                name: reason
                for name, spec in specs.items()
                if (reason := vector_fallback_reason(spec)) is not None
            }
            if fallbacks:
                lines = [
                    "Vector fallbacks — these ran on the per-node path:"
                ]
                lines.extend(
                    f"  {name}: {reason}"
                    for name, reason in fallbacks.items()
                )
                chunks.append("\n".join(lines))
            payload["vector_fallbacks"] = fallbacks
            parallel_fallbacks = {
                name: reason
                for name, spec in specs.items()
                if name not in fallbacks
                and (reason := parallel_fallback_reason(spec)) is not None
            }
            if parallel_fallbacks:
                lines = [
                    "Shard fallbacks — these ran the vector lane "
                    "single-core:"
                ]
                lines.extend(
                    f"  {name}: {reason}"
                    for name, reason in parallel_fallbacks.items()
                )
                chunks.append("\n".join(lines))
            payload["parallel_fallbacks"] = parallel_fallbacks
    if args.driver in ("threaded", "both"):
        reports = [
            run_scenario(name, driver="threaded", profile=profile, horizon=args.horizon)
            for name in names
        ]
        lines = [f"Scenario runs — threaded driver ({profile.name})"]
        for report in reports:
            lines.append(
                f"  {report.scenario}: {report.wall_seconds:.1f}s wall, "
                f"offers={report.offers} admitted={report.admitted} "
                f"delivered/node={report.delivered_min}..{report.delivered_max} "
                f"injected={report.injected_count} skipped={report.skipped_count}"
            )
            for item in report.injected:
                lines.append(f"    injected: {item}")
            for item in report.skipped:
                lines.append(f"    skipped: {item}")
        chunks.append("\n".join(lines))
        payload["threaded"] = reports
    if args.driver == "process":
        reports = [
            run_scenario(name, driver="process", profile=profile, horizon=args.horizon)
            for name in names
        ]
        lines = [f"Scenario runs — process driver ({profile.name})"]
        for report in reports:
            lines.append(
                f"  {report.scenario}: {report.wall_seconds:.1f}s wall, "
                f"{report.n_workers} workers, "
                f"offers={report.offers} admitted={report.admitted} "
                f"delivered/node={report.delivered_min}..{report.delivered_max} "
                f"injected={report.injected_count} skipped={report.skipped_count}"
            )
            for item in report.injected:
                lines.append(f"    injected: {item}")
            for item in report.skipped:
                lines.append(f"    skipped: {item}")
        chunks.append("\n".join(lines))
        payload["process"] = reports
    return "\n\n".join(chunks), payload


def _resolve_scenario_names(args, command: str) -> list[str]:
    from repro.scenarios.registry import scenario_names

    if args.all and args.names:
        raise SystemExit(
            f"{command}: pass scenario names or --all, not both "
            f"(--all would ignore {args.names})"
        )
    if args.all:
        return scenario_names()
    if args.names:
        return list(args.names)
    raise SystemExit(
        f"{command} needs scenario names (or --all); "
        "see `python -m repro.experiments list-scenarios`"
    )


def _run_check_scenarios(profile, args) -> tuple[str, dict, int]:
    """The regression gate. Returns (report text, JSON payload, exit code)."""
    from pathlib import Path

    from repro.scenarios.baselines import (
        compare_to_baseline,
        render_report,
        update_baseline,
    )
    from repro.scenarios.expectations import (
        ScenarioResult,
        evaluate_expectations,
    )
    from repro.scenarios.registry import get_scenario
    from repro.scenarios.runner import run_scenario, smoke_profile
    from repro.experiments.sweep import run_scenario_checks

    if args.quick:
        profile = smoke_profile(profile)
    names = _resolve_scenario_names(args, "check-scenarios")
    root = Path(args.baseline_dir) if args.baseline_dir else None
    tolerance = args.tolerance

    # (scenario, checks, result) triples, one per run performed; when
    # only re-capturing baselines, skip companion runs and evaluation —
    # their checks would be discarded
    runs: list[tuple[str, tuple, ScenarioResult]] = []
    if args.driver in ("sim", "both"):
        for check in run_scenario_checks(
            names,
            profile=profile,
            jobs=args.jobs,
            dispatch=args.dispatch,
            horizon=args.horizon,
            evaluate=not args.update_baselines,
            shards=args.shards,
        ):
            runs.append((check.scenario, check.checks, check.result))
    if args.driver in ("threaded", "both"):
        for name in names:
            # resolve once (the expectations live on the spec), then share
            # run-scenario's threaded path
            spec = get_scenario(name, profile)
            report = run_scenario(spec, driver="threaded", horizon=args.horizon)
            result = ScenarioResult.from_threaded(report, profile=profile.name)
            checks = (
                ()
                if args.update_baselines
                else evaluate_expectations(spec.expectations, result)
            )
            runs.append((name, checks, result))
    if args.driver == "process":
        for name in names:
            spec = get_scenario(name, profile)
            report = run_scenario(spec, driver="process", horizon=args.horizon)
            result = ScenarioResult.from_process(report, profile=profile.name)
            checks = (
                ()
                if args.update_baselines
                else evaluate_expectations(spec.expectations, result)
            )
            runs.append((name, checks, result))

    if args.update_baselines:
        lines = [f"Baselines updated — profile {profile.name}, driver {args.driver}"]
        written = 0
        for name, _, result in runs:
            path, changed = update_baseline(
                result, root, horizon=args.horizon, dispatch=args.dispatch
            )
            written += changed
            state = "updated" if changed else "unchanged"
            lines.append(f"  {name} [{result.driver}]: {path} {state}")
        lines.append(f"{written} entr{'y' if written == 1 else 'ies'} rewritten")
        payload = {
            "profile": profile.name,
            "driver": args.driver,
            "updated": written,
            "scenarios": names,
        }
        return "\n".join(lines), payload, 0

    run_rows = []
    for name, checks, result in runs:
        # --tolerance loosens the live-driver bands only: sim's exact
        # comparison is the determinism contract and stays exact
        tol = tolerance if result.driver in ("threaded", "process") else None
        diff = compare_to_baseline(result, root, horizon=args.horizon, tolerance=tol)
        run_rows.append((name, result.driver, checks, diff))
    rows = [
        (name if driver == "sim" else f"{name} [{driver}]", checks, diff)
        for name, driver, checks, diff in run_rows
    ]
    title = (
        f"Scenario expectations & baselines — profile {profile.name}, "
        f"driver {args.driver}, {args.dispatch} dispatch"
    )
    text = render_report(title, rows)
    violations = sum(
        1 for _, checks, _ in rows for c in checks if not c.passed and not c.skipped
    )
    drifted = sum(1 for _, _, diff in rows if not diff.clean)
    code = 1 if violations or drifted else 0
    payload = {
        "profile": profile.name,
        "driver": args.driver,
        "scenarios": names,
        "violations": violations,
        "baseline_failures": drifted,
        "exit_code": code,
        "runs": [
            {"scenario": name, "driver": driver, "checks": checks, "baseline": diff}
            for name, driver, checks, diff in run_rows
        ],
    }
    return text, payload, code


def _run_fuzz_scenarios(profile, args) -> tuple[str, dict, int]:
    """Seeded spec fuzzing. Returns (report text, JSON payload, exit code).

    Cases run at the smoke frame of ``--profile`` (the fuzzer's scale
    contract: a 200-case sweep answers in minutes). Every failure line
    ends with a standalone repro command carrying the seed and index, so
    a red nightly reproduces locally with a copy-paste.
    """
    from repro.scenarios.fuzz import run_fuzz

    drivers = ["sim", "threaded"] if args.driver == "both" else [args.driver]
    indices = args.only if args.only else None
    chunks: list[str] = []
    reports = []
    failures = 0
    for driver in drivers:
        report = run_fuzz(
            args.seed,
            count=args.count,
            profile=args.profile,  # base name (or None: active profile)
            driver=driver,
            jobs=args.jobs,
            dispatch=args.dispatch,
            horizon=args.horizon,
            indices=indices,
        )
        reports.append(report)
        failures += len(report.failing_indices)
        passed = sum(1 for o in report.outcomes if o.passed)
        lines = [
            f"Fuzz sweep — seed {report.seed}, {report.count} case(s), "
            f"{driver} driver ({report.profile})",
            f"  {passed}/{report.count} passed",
        ]
        for o in report.outcomes:
            if o.passed:
                continue
            lines.append(f"  FAIL case {o.index} ({o.name}): {o.summary}")
            for c in o.checks:
                if not c.passed and not c.skipped:
                    lines.append(
                        f"       {c.expectation}: observed {c.observed} "
                        f"vs bound {c.bound}"
                    )
            lines.append(f"       repro: {o.repro}")
        chunks.append("\n".join(lines))
    payload = {
        "seed": args.seed,
        "drivers": drivers,
        "failures": failures,
        "reports": reports,
    }
    return "\n\n".join(chunks), payload, 1 if failures else 0


def _run_bisect_scenario(profile, args) -> tuple[str, dict, int]:
    """Drift bisection: shrink a failing scenario to its offending core.

    Returns (report text, JSON payload, exit code): 0 when a minimal
    subset was found, 2 when the spec does not fail (nothing to bisect).
    """
    from repro.scenarios.bisect import (
        bisect_spec,
        expectation_predicate,
        git_bisect_command,
    )
    from repro.scenarios.registry import get_scenario
    from repro.scenarios.runner import smoke_profile

    conditions = None
    if args.fuzz_seed is not None:
        from repro.scenarios.fuzz import ScenarioFuzzer

        if args.index is None:
            raise SystemExit("bisect-scenario --fuzz-seed needs --index")
        fuzzer = ScenarioFuzzer(args.fuzz_seed, profile=smoke_profile(profile))
        case = fuzzer.case(args.index)
        spec, conditions = case.spec, case.conditions
        run_profile = fuzzer.profile
        subject = f"fuzz case {args.fuzz_seed}/{args.index} ({spec.name})"
    elif args.names:
        if len(args.names) != 1:
            raise SystemExit("bisect-scenario takes exactly one scenario name")
        if args.quick:
            profile = smoke_profile(profile)
        spec = get_scenario(args.names[0], profile)
        run_profile = profile
        subject = f"scenario {spec.name!r}"
    else:
        raise SystemExit(
            "bisect-scenario needs a scenario name or --fuzz-seed/--index"
        )
    failing = expectation_predicate(
        run_profile.name, dispatch=args.dispatch, horizon=args.horizon
    )
    try:
        result = bisect_spec(spec, failing, conditions=conditions)
    except ValueError as exc:
        text = f"{subject}: {exc}"
        return text, {"subject": subject, "reduced": False, "reason": str(exc)}, 2
    lines = [f"Bisected {subject} in {result.tests} run(s):"]
    if result.base_fails:
        lines.append(
            "  the failure persists with every condition removed — the base "
            "spec (workload/topology/protocol) is the culprit, not a condition"
        )
    elif not result.minimal:
        lines.append("  (empty subset)")
    else:
        lines.append(f"  minimal offending subset, {len(result.minimal)} unit(s):")
        for label in result.labels:
            lines.append(f"    - {label}")
    if args.git_hint:
        repro = (
            f"PYTHONPATH=src python -m repro.experiments bisect-scenario "
            + (
                f"--fuzz-seed {args.fuzz_seed} --index {args.index}"
                if args.fuzz_seed is not None
                else args.names[0]
            )
        )
        lines.append("  bisect over history instead:")
        lines.append(f"    {git_bisect_command(repro, good=args.git_hint)}")
    payload = {
        "subject": subject,
        "reduced": True,
        "base_fails": result.base_fails,
        "tests": result.tests,
        "minimal": list(result.labels),
    }
    return "\n".join(lines), payload, 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures and run "
        "registered scenarios.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--profile",
        default=None,
        help="scale profile: quick (default) or paper; also via REPRO_PROFILE",
    )
    common.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweeps/matrices (results are identical "
        "to --jobs 1; only the wall clock changes)",
    )
    common.add_argument(
        "--iterations",
        type=int,
        default=5,
        help="bisection iterations for calibration-based figures",
    )
    common.add_argument(
        "--buffers",
        type=int,
        nargs="*",
        default=None,
        help="buffer sizes for the calibrate command",
    )
    common.add_argument(
        "-o",
        "--output",
        default=None,
        help="also write the rendered tables to this file",
    )
    common.add_argument(
        "--json",
        default=None,
        help="also write the raw results as machine-readable JSON",
    )
    sub = parser.add_subparsers(dest="command", required=True, metavar="command")
    for name in sorted([*_COMMANDS, "all"]):
        sub.add_parser(
            name,
            parents=[common],
            help=(
                "run every figure" if name == "all"
                else f"regenerate {name}" if name.startswith("figure")
                else "measure tau and per-buffer max rates"
            ),
        )
    def scenario_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("names", nargs="*", help="registered scenario names")
        p.add_argument(
            "--all", action="store_true", help="run every registered scenario"
        )
        p.add_argument(
            "--driver",
            choices=["sim", "threaded", "process", "both"],
            default="sim",
            help="execution driver (default sim; 'both' = sim + threaded)",
        )
        p.add_argument(
            "--dispatch",
            choices=["batched", "timers", "vector"],
            default="batched",
            help="sim round-dispatch mode (results are byte-identical)",
        )
        p.add_argument(
            "--horizon",
            type=float,
            default=None,
            help="shrink each scenario to this many simulated seconds",
        )
        p.add_argument(
            "--shards",
            type=int,
            default=None,
            help="worker processes for the multicore vector lane "
            "(with --dispatch vector): 0 = auto (cores - 1), 1 = "
            "single-core; byte-identical at any count",
        )
        p.add_argument(
            "--quick",
            action="store_true",
            help="smoke scale: small group, short horizon, light load",
        )

    runner = sub.add_parser(
        "run-scenario",
        parents=[common],
        help="run named scenarios from the registry (sim, threaded or "
        "process driver)",
    )
    scenario_args(runner)
    checker = sub.add_parser(
        "check-scenarios",
        parents=[common],
        help="evaluate scenario expectations and diff metrics against the "
        "checked-in baselines; nonzero exit on violation or drift",
    )
    scenario_args(checker)
    checker.add_argument(
        "--update-baselines",
        action="store_true",
        help="re-capture the baseline snapshots instead of diffing (the "
        "blessing workflow after an intentional behaviour change)",
    )
    checker.add_argument(
        "--baseline-dir",
        default=None,
        help="baseline directory (default baselines/scenarios/)",
    )
    checker.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative drift band for threaded/process comparisons (default "
        "0.5); sim always compares exactly — that is the determinism contract",
    )
    sub.add_parser(
        "list-scenarios",
        parents=[common],
        help="list every registered scenario with its summary",
    )
    fuzzer = sub.add_parser(
        "fuzz-scenarios",
        parents=[common],
        help="run seeded random scenario compositions with property-style "
        "expectations; nonzero exit on any failure, each with a repro command",
    )
    fuzzer.add_argument("--seed", type=int, required=True, help="fuzzer root seed")
    fuzzer.add_argument(
        "--count", type=int, default=20, help="cases to generate (default 20)"
    )
    fuzzer.add_argument(
        "--only",
        type=int,
        nargs="*",
        default=None,
        metavar="INDEX",
        help="run only these case indices (the repro path)",
    )
    fuzzer.add_argument(
        "--driver",
        choices=["sim", "threaded", "both"],
        default="sim",
        help="execution driver (default sim)",
    )
    fuzzer.add_argument(
        "--dispatch",
        choices=["batched", "timers", "vector"],
        default="batched",
        help="sim round-dispatch mode (results are byte-identical)",
    )
    fuzzer.add_argument(
        "--horizon",
        type=float,
        default=None,
        help="shrink each case to this many simulated seconds",
    )
    bisecter = sub.add_parser(
        "bisect-scenario",
        parents=[common],
        help="delta-debug a failing scenario (or fuzz case) down to the "
        "minimal offending condition subset",
    )
    bisecter.add_argument(
        "names", nargs="*", help="one registered scenario name (or use --fuzz-seed)"
    )
    bisecter.add_argument(
        "--fuzz-seed",
        type=int,
        default=None,
        help="bisect a fuzz case instead: the fuzzer root seed",
    )
    bisecter.add_argument(
        "--index", type=int, default=None, help="the fuzz case index (with --fuzz-seed)"
    )
    bisecter.add_argument(
        "--dispatch",
        choices=["batched", "timers", "vector"],
        default="batched",
        help="sim round-dispatch mode for the predicate runs",
    )
    bisecter.add_argument(
        "--horizon",
        type=float,
        default=None,
        help="shrink predicate runs to this many simulated seconds",
    )
    bisecter.add_argument(
        "--quick",
        action="store_true",
        help="smoke scale for registry scenarios (fuzz cases always use it)",
    )
    bisecter.add_argument(
        "--git-hint",
        default=None,
        metavar="GOOD_SHA",
        help="also print the `git bisect run` recipe from this known-good sha",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    profile = get_profile(args.profile)
    code = 0
    if args.command == "check-scenarios":
        text, payload, code = _run_check_scenarios(profile, args)
        payloads = {"check-scenarios": payload}
    elif args.command == "fuzz-scenarios":
        text, payload, code = _run_fuzz_scenarios(profile, args)
        payloads = {"fuzz-scenarios": payload}
    elif args.command == "bisect-scenario":
        text, payload, code = _run_bisect_scenario(profile, args)
        payloads = {"bisect-scenario": payload}
    elif args.command == "run-scenario":
        text, payload = _run_run_scenario(profile, args)
        payloads = {"run-scenario": payload}
    elif args.command == "list-scenarios":
        text, payload = _run_list_scenarios(profile, args)
        payloads = {"list-scenarios": payload}
    else:
        names = sorted(_COMMANDS) if args.command == "all" else [args.command]
        chunks = []
        payloads = {}
        for name in names:
            chunk, payload = _COMMANDS[name](profile, args)
            chunks.append(chunk)
            payloads[name] = payload
        text = "\n\n".join(chunks)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    if args.json:
        doc = {
            "profile": profile.name,
            "jobs": args.jobs,
            "results": {name: to_jsonable(payload) for name, payload in payloads.items()},
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return code
