"""Seed replication and confidence intervals for experiments.

Single-seed results are fine for shape claims (every quantity here is an
average over hundreds of messages already), but publication-grade tables
want dispersion. :func:`replicate` re-runs a :class:`RunSpec` across
seeds; :func:`summarize_metric` reduces any extracted metric to mean,
standard deviation and a Student-t 95% confidence interval (scipy when
available, a normal approximation otherwise).

Example
-------
>>> spec = spec_for_profile(QUICK, "adaptive", buffer_capacity=30)
>>> runs = replicate(spec, seeds=range(5))
>>> summarize_metric(runs, lambda r: r.delivery.atomicity)
MetricSummary(mean=..., stdev=..., ci_low=..., ci_high=..., n=5)
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.experiments.harness import RunResult, RunSpec, run_once
from repro.metrics.stats import mean, stdev

__all__ = ["MetricSummary", "replicate", "summarize_metric", "t_interval"]


@dataclass(frozen=True, slots=True)
class MetricSummary:
    """Replication summary of one scalar metric."""

    mean: float
    stdev: float
    ci_low: float
    ci_high: float
    n: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3g} ± {(self.ci_high - self.ci_low) / 2:.2g} (n={self.n})"


def _t_critical(df: int, confidence: float) -> float:
    """Two-sided Student-t critical value; scipy if present."""
    try:
        from scipy import stats

        return float(stats.t.ppf(0.5 + confidence / 2, df))
    except ImportError:  # pragma: no cover - scipy is present in CI
        # Normal approximation with a small-sample inflation factor.
        z = 1.959963984540054
        return z * (1 + 1.0 / max(df, 1))


def t_interval(values: Sequence[float], confidence: float = 0.95) -> tuple[float, float]:
    """Student-t confidence interval for the mean of ``values``."""
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if len(values) < 2:
        raise ValueError("need at least two values")
    mu = mean(values)
    # sample stdev (ddof=1) from the population stdev helper
    sd = stdev(values) * math.sqrt(len(values) / (len(values) - 1))
    half = _t_critical(len(values) - 1, confidence) * sd / math.sqrt(len(values))
    return (mu - half, mu + half)


def replicate(spec: RunSpec, seeds: Iterable[int]) -> list[RunResult]:
    """Run ``spec`` once per seed (everything else identical)."""
    results = []
    for seed in seeds:
        results.append(run_once(dataclasses.replace(spec, seed=int(seed))))
    if not results:
        raise ValueError("need at least one seed")
    return results


def summarize_metric(
    runs: Sequence[RunResult],
    metric: Callable[[RunResult], float],
    confidence: float = 0.95,
) -> MetricSummary:
    """Reduce one metric over replicated runs."""
    values = [metric(r) for r in runs]
    values = [v for v in values if not math.isnan(v)]
    if len(values) < 2:
        raise ValueError("need at least two non-NaN metric values")
    lo, hi = t_interval(values, confidence)
    return MetricSummary(
        mean=mean(values),
        stdev=stdev(values),
        ci_low=lo,
        ci_high=hi,
        n=len(values),
    )
