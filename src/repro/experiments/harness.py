"""Single-experiment harness.

A :class:`RunSpec` fully describes one simulation run (protocol variant,
buffer size, offered load, horizon); :func:`run_once` executes it and
distils a :class:`RunResult` with every quantity the paper's figures
plot. Sweeps are then just comprehensions over specs — serial, or fanned
across cores by :func:`repro.experiments.sweep.run_specs` — and
benchmarks print rows straight from results.

Specs and results are plain picklable dataclasses: that is what lets the
sweep runner ship them across process boundaries, and
:attr:`RunSpec.dispatch` selects the driver's round-dispatch mode
(``"batched"`` by default; ``"timers"`` is the reference path — results
are byte-identical either way).

Scenario runs are RunSpecs too: :func:`spec_for_scenario` lowers a
declarative :class:`~repro.scenarios.spec.ScenarioSpec` onto the same
dataclass (workload shape, fault/churn scripts, topology and baseline
loss ride along in the optional trailing fields), so the sweep runner
shards whole scenario matrices exactly like buffer sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.core.config import AdaptiveConfig
from repro.experiments.profiles import Profile
from repro.gossip.config import SystemConfig
from repro.membership.views import ViewConfig
from repro.metrics.delivery import DeliveryStats, analyze_delivery
from repro.scenarios.spec import ScenarioSpec, SenderSpec, build_latency
from repro.sim.faults import CrashWindow
from repro.sim.vector import vector_ineligible_reason
from repro.sim.vector_parallel import parallel_ineligible_reason, resolve_shards
from repro.workload.cluster import SimCluster
from repro.workload.dynamics import ResourceScript

__all__ = [
    "RunSpec",
    "RunResult",
    "run_once",
    "spec_for_profile",
    "spec_for_scenario",
    "build_cluster",
    "vector_fallback_reason",
    "parallel_fallback_reason",
]


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reproduce one simulation run."""

    protocol: str  # "lpbcast" | "adaptive" | "static"
    system: SystemConfig
    n_nodes: int
    sender_ids: tuple[int, ...]
    offered_load: float  # total msg/s across all senders
    duration: float
    warmup: float
    drain: float
    seed: int = 0
    adaptive: Optional[AdaptiveConfig] = None
    rate_limit: Optional[float] = None  # per sender, for "static"
    script: Optional[ResourceScript] = None
    membership: str = "full"
    bucket_width: float = 1.0
    dispatch: str = "batched"  # "batched" | "timers" round dispatch
    # scenario-carrying fields (all default to "not present", so plain
    # experiment specs are unchanged): a declarative workload shape that
    # overrides the uniform sender_ids/offered_load split, fault and
    # churn scripts, a topology/latency spec, a baseline loss model,
    # partial-view sizing, an aggregation strategy, and the provenance
    # name of the scenario this spec was lowered from.
    senders: Optional[tuple[SenderSpec, ...]] = None
    faults: Optional[Any] = None  # FaultScript
    churn: Optional[Any] = None  # ChurnScript
    latency: Optional[Any] = None  # topology spec (has .build) or LatencyModel
    loss: Optional[Any] = None  # LossModel
    view_size: Optional[int] = None
    aggregate: Optional[Any] = None
    scenario: Optional[str] = None
    sample_gauges: bool = True
    # aggregate-only metrics: receiver counts instead of receiver sets,
    # no per-node gauges — the memory mode for 10k+-node runs
    aggregate_metrics: bool = False
    # sampling-worker processes for the multicore vector lane:
    # None/1 single-core, 0 auto (cores - 1), >= 2 that many shards —
    # byte-identical at any count (see repro.sim.vector_parallel)
    shards: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.sender_ids:
            raise ValueError("need at least one sender")
        if self.offered_load <= 0:
            raise ValueError("offered_load must be > 0")
        if not 0 <= self.warmup < self.duration:
            raise ValueError("warmup must fall inside the run")
        if not 0 <= self.drain < self.duration - self.warmup:
            raise ValueError("drain must leave a non-empty window")

    @property
    def rate_per_sender(self) -> float:
        return self.offered_load / len(self.sender_ids)

    @property
    def window(self) -> tuple[float, float]:
        return (self.warmup, self.duration - self.drain)

    def with_protocol(self, protocol: str) -> "RunSpec":
        return replace(self, protocol=protocol)

    def with_buffer(self, capacity: int) -> "RunSpec":
        return replace(self, system=self.system.with_buffer(capacity))


@dataclass(frozen=True)
class RunResult:
    """Steady-state measurements of one run (over the spec's window)."""

    spec: RunSpec
    delivery: DeliveryStats
    offered_rate: float  # msg/s offered by the application
    input_rate: float  # msg/s admitted (the paper's "input rate")
    output_rate: float  # unique deliveries per member per second
    drop_age_mean: float  # mean age of overflow-dropped events
    allowed_rate_total: float  # sum of senders' allowed rates (NaN for lpbcast)
    avg_age_mean: float  # mean avgAge estimate across nodes (NaN for lpbcast)
    min_buff_mean: float  # mean minBuff estimate across nodes (NaN for lpbcast)
    drops_overflow: float
    drops_age_out: float
    senders_total: int = 0  # senders configured in the spec
    senders_reached: int = 0  # senders with >=1 window message heard beyond them
    # gossip-level duplicate pressure over the whole run: summaries
    # received for events already seen, per unique protocol delivery —
    # the cost axis RedundancyAtMost expectations bound
    gossip_redundancy: float = math.nan
    # network-level fault accounting over the whole run, straight off the
    # wire: how much adversity the injected windows actually exercised.
    # Visible even in aggregate-only collector mode, where per-node
    # receiver sets (and thus most delivery detail) are unavailable.
    net_lost: int = 0
    net_partitioned: int = 0
    net_oneway_blocked: int = 0
    net_link_lost: int = 0
    net_capped: int = 0

    @property
    def loss_rate(self) -> float:
        """input − output (the gap Figure 7(b) visualises)."""
        return self.input_rate - self.output_rate


def spec_for_profile(
    profile: Profile,
    protocol: str,
    buffer_capacity: Optional[int] = None,
    offered_load: Optional[float] = None,
    adaptive: Optional[AdaptiveConfig] = None,
    **overrides,
) -> RunSpec:
    """Convenience: build a :class:`RunSpec` from a profile."""
    if adaptive is None and protocol == "adaptive":
        adaptive = AdaptiveConfig(age_critical=profile.tau_hint)
    return RunSpec(
        protocol=protocol,
        system=profile.system(buffer_capacity),
        n_nodes=profile.n_nodes,
        sender_ids=tuple(profile.sender_ids()),
        offered_load=(
            offered_load if offered_load is not None else profile.offered_load
        ),
        duration=profile.duration,
        warmup=profile.warmup,
        drain=profile.drain,
        seed=profile.seed,
        adaptive=adaptive,
        **overrides,
    )


def spec_for_scenario(
    scenario: ScenarioSpec,
    dispatch: str = "batched",
    horizon: Optional[float] = None,
    **overrides,
) -> RunSpec:
    """Lower a declarative scenario onto a :class:`RunSpec`.

    ``horizon`` shrinks the run (warmup/drain scale along) — the smoke
    and determinism harnesses use it to exercise every scenario in
    seconds. Further keyword ``overrides`` replace RunSpec fields.
    """
    if horizon is not None:
        scenario = scenario.with_horizon(horizon)
    params = dict(
        protocol=scenario.protocol,
        system=scenario.system,
        n_nodes=scenario.n_nodes,
        sender_ids=scenario.sender_ids,
        offered_load=scenario.offered_load,
        duration=scenario.duration,
        warmup=scenario.warmup,
        drain=scenario.drain,
        seed=scenario.seed,
        adaptive=scenario.adaptive,
        rate_limit=scenario.rate_limit,
        script=scenario.resources if len(scenario.resources) else None,
        membership=scenario.membership,
        bucket_width=scenario.bucket_width,
        dispatch=dispatch,
        senders=scenario.senders,
        faults=scenario.faults if len(scenario.faults) else None,
        churn=scenario.churn if len(scenario.churn) else None,
        latency=scenario.topology,
        loss=scenario.baseline_loss,
        view_size=scenario.view_size,
        aggregate=scenario.aggregate,
        scenario=scenario.name,
    )
    params.update(overrides)
    return RunSpec(**params)


def vector_fallback_reason(spec: RunSpec) -> Optional[str]:
    """Why ``dispatch="vector"`` would fall back to per-node protocols.

    ``None`` means the whole-population columnar lane engages for this
    spec; otherwise a human-readable sentence (the CLI prints it so users
    learn why they got the slow lane). Screens the full spec — including
    its fault/churn schedules and sender placement, which the cluster
    constructor cannot see.
    """
    sender_ids = set(spec.sender_ids)
    if spec.senders is not None:
        sender_ids.update(s.node for s in spec.senders)
    return vector_ineligible_reason(
        protocol=spec.protocol,
        membership=spec.membership,
        system=spec.system,
        latency=build_latency(spec.latency, spec.n_nodes),
        loss=spec.loss,
        trace=False,
        aggregate=spec.aggregate,
        rate_limit=spec.rate_limit,
        n_nodes=spec.n_nodes,
        faults=spec.faults,
        churn=spec.churn,
        sender_ids=tuple(sender_ids),
    )


def parallel_fallback_reason(spec: RunSpec) -> Optional[str]:
    """Why ``shards >= 2`` would fall back to single-core execution.

    ``None`` when no multicore run was requested or the parallel lane
    engages; otherwise a sentence the CLI prints alongside the vector
    fallback reasons.
    """
    resolved = resolve_shards(spec.shards)
    if resolved < 2:
        return None
    if spec.dispatch != "vector":
        return (
            f"shards={resolved} needs --dispatch vector "
            f"(dispatch is {spec.dispatch!r})"
        )
    if vector_fallback_reason(spec) is not None:
        return f"shards={resolved} needs the vector lane, which did not engage"
    return parallel_ineligible_reason(shards=resolved, n_nodes=spec.n_nodes)


def build_cluster(spec: RunSpec) -> SimCluster:
    """Materialise the cluster, senders and schedules for a spec
    (without running)."""
    latency = build_latency(spec.latency, spec.n_nodes)
    cluster = SimCluster(
        n_nodes=spec.n_nodes,
        system=spec.system,
        protocol=spec.protocol,
        adaptive=spec.adaptive,
        rate_limit=spec.rate_limit,
        aggregate=spec.aggregate,
        seed=spec.seed,
        latency=latency,
        loss=spec.loss,
        membership=spec.membership,
        view_config=(
            ViewConfig(view_size=spec.view_size) if spec.view_size is not None else None
        ),
        bucket_width=spec.bucket_width,
        dispatch=spec.dispatch,
        sample_gauges=spec.sample_gauges,
        aggregate_metrics=spec.aggregate_metrics,
        # the columnar mega lane honours loss/partition/cap/crash/churn
        # schedules it can prove equivalent; anything else (sender
        # crashes, off-tick restarts, brand-new identities) materialises
        # per-node protocols
        allow_mega=(
            spec.dispatch != "vector" or vector_fallback_reason(spec) is None
        ),
        shards=spec.shards,
    )
    if spec.senders is not None:
        for sender in spec.senders:
            cluster.add_sender(
                sender.node,
                sender.rate,
                arrivals=sender.build_arrivals(),
                start=sender.start,
                stop=sender.stop,
                queue_limit=sender.queue_limit,
            )
    else:
        cluster.add_senders(list(spec.sender_ids), rate_each=spec.rate_per_sender)
    if spec.script is not None:
        spec.script.apply(cluster)
    if spec.faults is not None:
        cluster.apply_faults(spec.faults, baseline_loss=spec.loss)
    if spec.churn is not None:
        cluster.apply_churn(spec.churn)
    return cluster


def run_once(spec: RunSpec) -> RunResult:
    """Execute a spec and summarise its steady-state window."""
    cluster = build_cluster(spec)
    try:
        return _summarise(cluster, spec)
    finally:
        cluster.close()


def _summarise(cluster: SimCluster, spec: RunSpec) -> RunResult:
    cluster.run(until=spec.duration)

    since, until = spec.window
    m = cluster.metrics
    # Under churn/crash schedules the group size moves mid-window; judge
    # each message against the group it was broadcast into, not the
    # end-of-run directory (see analyze_delivery's size_at). Loss/
    # partition/bandwidth fault windows never change membership, so they
    # keep the cheap fixed-denominator path.
    moving_membership = spec.churn is not None or (
        spec.faults is not None
        and any(isinstance(f, CrashWindow) for f in spec.faults.faults)
    )
    window_messages = m.messages_in_window(since, until)
    delivery = analyze_delivery(
        window_messages,
        cluster.group_size,
        size_at=cluster.group_size_at if moving_membership else None,
    )
    # a sender "reached the group" if any of its window messages was
    # delivered beyond the sender itself (NoDroppedSenders expectations)
    reached = {r.origin for r in window_messages if r.receiver_count >= 2}
    stats = [node.protocol.stats for node in cluster.nodes.values()]
    duplicates_seen = sum(getattr(s, "duplicates_seen", 0) for s in stats)
    protocol_delivered = sum(getattr(s, "events_delivered", 0) for s in stats)
    window_len = until - since
    senders = list(spec.sender_ids)
    allowed_each = m.gauge_mean_over("allowed_rate", senders, since, until)
    return RunResult(
        spec=spec,
        delivery=delivery,
        offered_rate=m.offered.rate(since, until),
        input_rate=m.admitted.rate(since, until),
        output_rate=m.deliveries.count(since, until) / (cluster.group_size * window_len),
        drop_age_mean=m.mean_drop_age(since, until),
        allowed_rate_total=(
            allowed_each * len(senders) if not math.isnan(allowed_each) else math.nan
        ),
        avg_age_mean=m.gauge_mean("avg_age", since, until),
        min_buff_mean=m.gauge_mean("min_buff", since, until),
        drops_overflow=m.drops_overflow.count(since, until),
        drops_age_out=m.drops_age_out.count(since, until),
        senders_total=len(senders),
        senders_reached=sum(1 for node in senders if node in reached),
        gossip_redundancy=(
            duplicates_seen / protocol_delivered if protocol_delivered else math.nan
        ),
        net_lost=cluster.network.stats.lost,
        net_partitioned=cluster.network.stats.partitioned,
        net_oneway_blocked=cluster.network.stats.oneway_blocked,
        net_link_lost=cluster.network.stats.link_lost,
        net_capped=cluster.network.stats.capped,
    )
