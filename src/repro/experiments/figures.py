"""One experiment function per figure of the paper's evaluation.

Each function returns a small result dataclass holding exactly the
series the paper plots, ready for :mod:`repro.experiments.report` to
render and for the benchmarks to assert shape properties on.

Figures 6, 7(a–c) and 8(a–b) all come from the *same* buffer sweep with
the baseline and the adaptive protocol (the paper runs one series of
simulations and reads several figures off it); the shared sweep is
:func:`buffer_sweep_comparison` and the figure functions are views of it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.config import AdaptiveConfig
from repro.experiments.calibrate import CalibrationResult, calibrate
from repro.experiments.harness import RunResult, run_once, spec_for_profile
from repro.experiments.sweep import run_specs
from repro.experiments.profiles import Profile
from repro.metrics.delivery import analyze_delivery, atomicity_series
from repro.workload.cluster import SimCluster
from repro.workload.dynamics import ResourceScript

__all__ = [
    "Figure2Row",
    "Figure2Result",
    "figure2",
    "figure4",
    "SweepPair",
    "buffer_sweep_comparison",
    "Figure6Row",
    "Figure6Result",
    "figure6",
    "Figure7Row",
    "Figure7Result",
    "figure7",
    "Figure8Row",
    "Figure8Result",
    "figure8",
    "Figure9Result",
    "figure9",
]


# ----------------------------------------------------------------------
# Figure 2 — reliability degradation vs input rate (static resources)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Figure2Row:
    input_rate: float
    atomicity_pct: float  # messages to >95% of receivers (%)
    avg_receiver_pct: float
    drop_age: float  # mean age of dropped events at this load


@dataclass(frozen=True)
class Figure2Result:
    buffer_capacity: int
    rows: tuple[Figure2Row, ...]


def figure2(
    profile: Profile, buffer_capacity: Optional[int] = None, jobs: int = 1
) -> Figure2Result:
    """Reproduce Figure 2 (plus §2.1's drop-age narrative).

    The baseline protocol with a fixed buffer is driven at increasing
    offered loads; reliability collapses and the drop age falls with it.
    """
    capacity = buffer_capacity if buffer_capacity is not None else profile.fig2_buffer
    results = run_specs(
        [
            spec_for_profile(
                profile, "lpbcast", buffer_capacity=capacity, offered_load=rate
            )
            for rate in profile.input_rates
        ],
        jobs=jobs,
    )
    rows = [
        Figure2Row(
            input_rate=rate,
            atomicity_pct=result.delivery.atomicity_pct,
            avg_receiver_pct=result.delivery.avg_receiver_pct,
            drop_age=result.drop_age_mean,
        )
        for rate, result in zip(profile.input_rates, results)
    ]
    return Figure2Result(buffer_capacity=capacity, rows=tuple(rows))


# ----------------------------------------------------------------------
# Figure 4 — maximum input rate vs buffer size (the calibration)
# ----------------------------------------------------------------------
def figure4(profile: Profile, iterations: int = 6) -> CalibrationResult:
    """Reproduce Figure 4: the calibration sweep (see calibrate module)."""
    return calibrate(profile, iterations=iterations)


# ----------------------------------------------------------------------
# shared buffer sweep for Figures 6, 7, 8
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class SweepPair:
    buffer_capacity: int
    lpbcast: RunResult
    adaptive: RunResult


def buffer_sweep_comparison(
    profile: Profile,
    adaptive: Optional[AdaptiveConfig] = None,
    buffer_sizes: Optional[tuple[int, ...]] = None,
    jobs: int = 1,
) -> tuple[SweepPair, ...]:
    """Run baseline and adaptive at constant offered load over the sweep.

    ``jobs`` shards the runs across processes; results are identical to
    a serial sweep (each run is seed-isolated).
    """
    if adaptive is None:
        adaptive = AdaptiveConfig(age_critical=profile.tau_hint)
    sizes = buffer_sizes if buffer_sizes is not None else profile.buffer_sizes
    specs = []
    for capacity in sizes:
        specs.append(spec_for_profile(profile, "lpbcast", buffer_capacity=capacity))
        specs.append(
            spec_for_profile(
                profile, "adaptive", buffer_capacity=capacity, adaptive=adaptive
            )
        )
    results = run_specs(specs, jobs=jobs)
    return tuple(
        SweepPair(capacity, results[2 * i], results[2 * i + 1])
        for i, capacity in enumerate(sizes)
    )


# ----------------------------------------------------------------------
# Figure 6 — ideal and adaptive rates
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Figure6Row:
    buffer_capacity: int
    offered: float
    allowed: float  # the adaptive mechanism's computed grant (total)
    maximum: float  # the calibrated "ideal" maximum rate


@dataclass(frozen=True)
class Figure6Result:
    rows: tuple[Figure6Row, ...]


def figure6(
    profile: Profile,
    sweep: Optional[tuple[SweepPair, ...]] = None,
    calibration: Optional[CalibrationResult] = None,
) -> Figure6Result:
    """Reproduce Figure 6.

    ``maximum`` comes from a provided calibration, falling back to the
    profile's measured hints so this figure does not force a re-run of
    the (slow) Figure 4 bisections.
    """
    if sweep is None:
        sweep = buffer_sweep_comparison(profile)
    rows = []
    for pair in sweep:
        if calibration is not None:
            maximum = calibration.max_rate_for(pair.buffer_capacity)
        else:
            maximum = profile.max_rate_hints.get(pair.buffer_capacity, math.nan)
        rows.append(
            Figure6Row(
                buffer_capacity=pair.buffer_capacity,
                offered=pair.adaptive.offered_rate,
                allowed=pair.adaptive.allowed_rate_total,
                maximum=maximum,
            )
        )
    return Figure6Result(rows=tuple(rows))


# ----------------------------------------------------------------------
# Figure 7 — input rate, output rate, drop ages
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Figure7Row:
    buffer_capacity: int
    input_lpbcast: float
    input_adaptive: float
    output_lpbcast: float
    output_adaptive: float
    drop_age_lpbcast: float
    drop_age_adaptive: float


@dataclass(frozen=True)
class Figure7Result:
    rows: tuple[Figure7Row, ...]


def figure7(
    profile: Profile, sweep: Optional[tuple[SweepPair, ...]] = None
) -> Figure7Result:
    """Reproduce Figures 7(a), 7(b) and 7(c) from the shared sweep."""
    if sweep is None:
        sweep = buffer_sweep_comparison(profile)
    rows = [
        Figure7Row(
            buffer_capacity=pair.buffer_capacity,
            input_lpbcast=pair.lpbcast.input_rate,
            input_adaptive=pair.adaptive.input_rate,
            output_lpbcast=pair.lpbcast.output_rate,
            output_adaptive=pair.adaptive.output_rate,
            drop_age_lpbcast=pair.lpbcast.drop_age_mean,
            drop_age_adaptive=pair.adaptive.drop_age_mean,
        )
        for pair in sweep
    ]
    return Figure7Result(rows=tuple(rows))


# ----------------------------------------------------------------------
# Figure 8 — reliability degradation, baseline vs adaptive
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Figure8Row:
    buffer_capacity: int
    avg_receiver_pct_lpbcast: float
    avg_receiver_pct_adaptive: float
    atomicity_pct_lpbcast: float
    atomicity_pct_adaptive: float


@dataclass(frozen=True)
class Figure8Result:
    rows: tuple[Figure8Row, ...]


def figure8(
    profile: Profile, sweep: Optional[tuple[SweepPair, ...]] = None
) -> Figure8Result:
    """Reproduce Figures 8(a) and 8(b) from the shared sweep."""
    if sweep is None:
        sweep = buffer_sweep_comparison(profile)
    rows = [
        Figure8Row(
            buffer_capacity=pair.buffer_capacity,
            avg_receiver_pct_lpbcast=pair.lpbcast.delivery.avg_receiver_pct,
            avg_receiver_pct_adaptive=pair.adaptive.delivery.avg_receiver_pct,
            atomicity_pct_lpbcast=pair.lpbcast.delivery.atomicity_pct,
            atomicity_pct_adaptive=pair.adaptive.delivery.atomicity_pct,
        )
        for pair in sweep
    ]
    return Figure8Result(rows=tuple(rows))


# ----------------------------------------------------------------------
# Figure 9 — adaptation to dynamic buffer sizes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure9Result:
    """Time series and per-phase summaries of the dynamic scenario."""

    t1: float
    t2: float
    duration: float
    offered: float
    ideal_rates: tuple[float, float, float]  # per phase (base, low, mid)
    # (time, value) series, bucketed
    allowed_series: tuple[tuple[float, float], ...]  # total allowed rate
    atomicity_adaptive: tuple[tuple[float, float], ...]
    atomicity_lpbcast: tuple[tuple[float, float], ...]
    # per-phase steady-state summaries (last third of each phase)
    allowed_by_phase: tuple[float, float, float]
    atomicity_adaptive_by_phase: tuple[float, float, float]
    atomicity_lpbcast_by_phase: tuple[float, float, float]
    # heterogeneity observation (§4): homogeneous-at-min run for contrast
    atomicity_homogeneous_low: float


def _phase_windows(profile: Profile) -> tuple[tuple[float, float], ...]:
    """Steady-state window of each phase: its last 40% (minus drain)."""
    t1, t2, end = profile.fig9_t1, profile.fig9_t2, profile.fig9_duration
    windows = []
    for start, stop in ((0.0, t1), (t1, t2), (t2, end)):
        span = stop - start
        windows.append((stop - 0.4 * span, stop - min(10.0, 0.1 * span)))
    return tuple(windows)


def _dynamic_cluster(profile: Profile, protocol: str, adaptive: Optional[AdaptiveConfig]):
    system = profile.system(profile.fig9_base_buffer)
    cluster = SimCluster(
        n_nodes=profile.n_nodes,
        system=system,
        protocol=protocol,
        adaptive=adaptive,
        seed=profile.seed,
    )
    senders = profile.sender_ids()
    cluster.add_senders(senders, rate_each=profile.fig9_offered / len(senders))
    # The shrinking nodes: the last `frac` of the id space, so they do
    # not collide with the (stride-placed) senders at typical fractions.
    n_small = max(1, int(profile.fig9_frac * profile.n_nodes))
    small = [profile.n_nodes - 1 - i for i in range(n_small)]
    script = (
        ResourceScript()
        .set_capacity(profile.fig9_t1, small, profile.fig9_low_buffer)
        .set_capacity(profile.fig9_t2, small, profile.fig9_mid_buffer)
    )
    script.apply(cluster)
    return cluster, senders


def figure9(
    profile: Profile, adaptive: Optional[AdaptiveConfig] = None
) -> Figure9Result:
    """Reproduce Figures 9(a) and 9(b)."""
    if adaptive is None:
        adaptive = AdaptiveConfig(age_critical=profile.tau_hint)

    # --- adaptive run -------------------------------------------------
    cluster, senders = _dynamic_cluster(profile, "adaptive", adaptive)
    cluster.run(until=profile.fig9_duration)
    m = cluster.metrics
    n = cluster.group_size
    bucket = 5.0
    allowed_series = []
    for t in range(0, int(profile.fig9_duration), int(bucket)):
        each = m.gauge_mean_over("allowed_rate", senders, t, t + bucket)
        allowed_series.append((float(t), each * len(senders)))
    atom_adaptive = atomicity_series(m, n, bucket, 0.0, profile.fig9_duration)

    windows = _phase_windows(profile)
    allowed_by_phase = tuple(
        m.gauge_mean_over("allowed_rate", senders, w0, w1) * len(senders)
        for (w0, w1) in windows
    )
    atom_adaptive_by_phase = tuple(
        analyze_delivery(m.messages_in_window(w0, w1), n).atomicity for (w0, w1) in windows
    )

    # --- baseline run (same scenario) ---------------------------------
    base_cluster, _ = _dynamic_cluster(profile, "lpbcast", None)
    base_cluster.run(until=profile.fig9_duration)
    bm = base_cluster.metrics
    atom_lpbcast = atomicity_series(bm, n, bucket, 0.0, profile.fig9_duration)
    atom_lpbcast_by_phase = tuple(
        analyze_delivery(bm.messages_in_window(w0, w1), n).atomicity for (w0, w1) in windows
    )

    # --- homogeneous contrast run (§4's 87% vs 92% observation) -------
    # Every node at the low buffer, adaptive protocol, same load: the
    # heterogeneous scenario should do *better* in phase 2 because the
    # untouched nodes keep their full buffers.
    homo = run_once(
        spec_for_profile(
            profile,
            "adaptive",
            buffer_capacity=profile.fig9_low_buffer,
            offered_load=profile.fig9_offered,
            adaptive=adaptive,
        )
    )

    ideal = (
        _hint(profile, profile.fig9_base_buffer),
        _hint(profile, profile.fig9_low_buffer),
        _hint(profile, profile.fig9_mid_buffer),
    )
    return Figure9Result(
        t1=profile.fig9_t1,
        t2=profile.fig9_t2,
        duration=profile.fig9_duration,
        offered=profile.fig9_offered,
        ideal_rates=ideal,
        allowed_series=tuple(allowed_series),
        atomicity_adaptive=tuple(atom_adaptive),
        atomicity_lpbcast=tuple(atom_lpbcast),
        allowed_by_phase=allowed_by_phase,
        atomicity_adaptive_by_phase=atom_adaptive_by_phase,
        atomicity_lpbcast_by_phase=atom_lpbcast_by_phase,
        atomicity_homogeneous_low=homo.delivery.atomicity,
    )


def _hint(profile: Profile, buffer_capacity: int) -> float:
    hints = profile.max_rate_hints
    if buffer_capacity in hints:
        return hints[buffer_capacity]
    sizes = sorted(hints)
    if not sizes:
        return math.nan
    if buffer_capacity <= sizes[0]:
        return hints[sizes[0]] * buffer_capacity / sizes[0]
    for lo, hi in zip(sizes, sizes[1:]):
        if buffer_capacity <= hi:
            frac = (buffer_capacity - lo) / (hi - lo)
            return hints[lo] + frac * (hints[hi] - hints[lo])
    return hints[sizes[-1]]
