"""Sharded parallel execution of experiment sweeps.

A sweep is a list of :class:`~repro.experiments.harness.RunSpec`s; this
module fans them across a :mod:`multiprocessing` pool so multi-figure
sessions and many-seed replications use every core. Because each spec is
a fully isolated simulation keyed by its own seed, the results are
**identical whatever the job count** — ``--jobs 4`` reproduces ``--jobs
1`` bit for bit, in spec order (the determinism tests assert this).

:func:`run_specs` returns the distilled :class:`RunResult` per spec;
:func:`merged_metrics` instead ships each shard's whole (picklable)
:class:`~repro.metrics.collector.MetricsCollector` back and reduces them
with :meth:`~repro.metrics.collector.MetricsCollector.merge` — for
analyses that need raw message records from sender-disjoint shards of
one logical experiment rather than per-run summaries.
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
from typing import Any, Iterable, Optional, Sequence

from repro.experiments.harness import (
    RunResult,
    RunSpec,
    build_cluster,
    run_once,
    spec_for_scenario,
)
from repro.metrics.collector import MetricsCollector

__all__ = [
    "run_specs",
    "run_scenario_matrix",
    "merged_metrics",
    "to_jsonable",
    "results_to_jsonable",
]


def _pool(jobs: int):
    # Platform-default start method: fork on Linux (cheap, inherits
    # sys.path), spawn on macOS/Windows (workers re-import, so the
    # package must be importable — pyproject's src layout covers it).
    return multiprocessing.get_context().Pool(processes=jobs)


def run_specs(specs: Iterable[RunSpec], jobs: int = 1) -> list[RunResult]:
    """Execute every spec, ``jobs`` at a time; results in spec order."""
    specs = list(specs)
    if jobs is None or jobs <= 1 or len(specs) <= 1:
        return [run_once(spec) for spec in specs]
    with _pool(min(jobs, len(specs))) as pool:
        # chunksize 1: specs have wildly different costs (buffer sweeps
        # scale superlinearly in load), so fine-grained stealing wins.
        return pool.map(run_once, specs, chunksize=1)


def run_scenario_matrix(
    names: Optional[Sequence[str]] = None,
    profile: Any = None,
    jobs: int = 1,
    dispatch: str = "batched",
    horizon: Optional[float] = None,
) -> list[RunResult]:
    """Run a scenario matrix, ``jobs`` at a time; results in name order.

    Defaults to *every* registered scenario (the whole registry sweeps in
    parallel). Scenario runs are ordinary :class:`RunSpec`s after
    lowering, so the job-count determinism guarantee of :func:`run_specs`
    carries over verbatim; each result's ``spec.scenario`` records which
    scenario produced it.
    """
    # the registry sits above this layer; resolve it at call time
    from repro.scenarios.registry import get_scenario, scenario_names

    if names is None:
        names = scenario_names()
    specs = [
        spec_for_scenario(get_scenario(name, profile), dispatch=dispatch, horizon=horizon)
        for name in names
    ]
    return run_specs(specs, jobs=jobs)


def _collect_once(spec: RunSpec) -> MetricsCollector:
    cluster = build_cluster(spec)
    cluster.run(until=spec.duration)
    return cluster.metrics


def merged_metrics(specs: Iterable[RunSpec], jobs: int = 1) -> MetricsCollector:
    """Run every spec and reduce all collectors into one.

    Shards must have non-colliding event ids to be meaningfully merged:
    distinct sender nodes per spec, or observation shards of one logical
    run. Independent seeds that reuse the same senders produce colliding
    ``EventId``s — :meth:`MetricsCollector.merge` raises on those; use
    :func:`run_specs` / :mod:`repro.experiments.replication` to compare
    runs statistically instead.
    """
    specs = list(specs)
    if not specs:
        raise ValueError("need at least one spec")
    if jobs is None or jobs <= 1 or len(specs) <= 1:
        collectors = [_collect_once(spec) for spec in specs]
    else:
        with _pool(min(jobs, len(specs))) as pool:
            collectors = pool.map(_collect_once, specs, chunksize=1)
    merged = collectors[0]
    for collector in collectors[1:]:
        merged.merge(collector)
    return merged


# ----------------------------------------------------------------------
# machine-readable output
# ----------------------------------------------------------------------
def to_jsonable(value: Any) -> Any:
    """Recursively convert dataclasses/tuples and sanitise NaN for JSON."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None  # NaN/inf have no strict-JSON representation
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def results_to_jsonable(results: Sequence[RunResult]) -> list[dict]:
    """A result list as strict-JSON-safe dicts, in order."""
    return [to_jsonable(r) for r in results]
