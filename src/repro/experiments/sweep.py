"""Sharded parallel execution of experiment sweeps.

A sweep is a list of :class:`~repro.experiments.harness.RunSpec`s; this
module fans them across a :mod:`multiprocessing` pool so multi-figure
sessions and many-seed replications use every core. Because each spec is
a fully isolated simulation keyed by its own seed, the results are
**identical whatever the job count** — ``--jobs 4`` reproduces ``--jobs
1`` bit for bit, in spec order (the determinism tests assert this).

:func:`run_specs` returns the distilled :class:`RunResult` per spec;
:func:`merged_metrics` instead ships each shard's whole (picklable)
:class:`~repro.metrics.collector.MetricsCollector` back and reduces them
with :meth:`~repro.metrics.collector.MetricsCollector.merge` — for
analyses that need raw message records from sender-disjoint shards of
one logical experiment rather than per-run summaries.
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
from typing import Any, Iterable, Optional, Sequence

from repro.experiments.harness import (
    RunResult,
    RunSpec,
    build_cluster,
    run_once,
    spec_for_scenario,
)
from repro.metrics.collector import MetricsCollector

__all__ = [
    "run_specs",
    "run_scenario_matrix",
    "run_scenario_checks",
    "run_spec_checks",
    "merged_metrics",
    "to_jsonable",
    "results_to_jsonable",
]


def _pool(jobs: int):
    # Platform-default start method: fork on Linux (cheap, inherits
    # sys.path), spawn on macOS/Windows (workers re-import, so the
    # package must be importable — pyproject's src layout covers it).
    return multiprocessing.get_context().Pool(processes=jobs)


def run_specs(specs: Iterable[RunSpec], jobs: int = 1) -> list[RunResult]:
    """Execute every spec, ``jobs`` at a time; results in spec order."""
    specs = list(specs)
    if jobs is None or jobs <= 1 or len(specs) <= 1:
        return [run_once(spec) for spec in specs]
    with _pool(min(jobs, len(specs))) as pool:
        # chunksize 1: specs have wildly different costs (buffer sweeps
        # scale superlinearly in load), so fine-grained stealing wins.
        return pool.map(run_once, specs, chunksize=1)


def run_scenario_matrix(
    names: Optional[Sequence[str]] = None,
    profile: Any = None,
    jobs: int = 1,
    dispatch: str = "batched",
    horizon: Optional[float] = None,
    shards: Optional[int] = None,
) -> list[RunResult]:
    """Run a scenario matrix, ``jobs`` at a time; results in name order.

    Defaults to *every* registered scenario (the whole registry sweeps in
    parallel). Scenario runs are ordinary :class:`RunSpec`s after
    lowering, so the job-count determinism guarantee of :func:`run_specs`
    carries over verbatim; each result's ``spec.scenario`` records which
    scenario produced it.
    """
    # the registry sits above this layer; resolve it at call time
    from repro.scenarios.registry import get_scenario, scenario_names

    if names is None:
        names = scenario_names()
    specs = [
        spec_for_scenario(
            get_scenario(name, profile),
            dispatch=dispatch,
            horizon=horizon,
            shards=shards,
        )
        for name in names
    ]
    return run_specs(specs, jobs=jobs)


@dataclasses.dataclass(frozen=True)
class _CheckJob:
    """One shard of a scenario check matrix (picklable)."""

    spec: Any  # ScenarioSpec, expectations attached
    profile_name: str
    dispatch: str = "batched"
    horizon: Optional[float] = None
    evaluate: bool = True  # False: result capture only (baseline updates)
    shards: Optional[int] = None  # multicore vector lane worker count


def _check_one(job: _CheckJob):
    """Run one scenario, its static companion if an expectation demands
    one, and evaluate the expectations — all inside the shard, so only
    the small distilled results cross the process boundary."""
    from repro.scenarios.expectations import (
        ScenarioCheck,
        ScenarioResult,
        evaluate_expectations,
        needs_companion,
    )

    spec = job.spec
    run = run_once(
        spec_for_scenario(
            spec, dispatch=job.dispatch, horizon=job.horizon, shards=job.shards
        )
    )
    result = ScenarioResult.from_sim(run, profile=job.profile_name)
    if not job.evaluate:
        return ScenarioCheck(scenario=spec.name, result=result)
    companion = None
    protocol = needs_companion(spec.expectations)
    if protocol is not None:
        static_spec = spec.replace(protocol=protocol, adaptive=None, rate_limit=None)
        static_run = run_once(
            spec_for_scenario(
                static_spec,
                dispatch=job.dispatch,
                horizon=job.horizon,
                shards=job.shards,
            )
        )
        companion = ScenarioResult.from_sim(static_run, profile=job.profile_name)
    return ScenarioCheck(
        scenario=spec.name,
        result=result,
        checks=evaluate_expectations(spec.expectations, result, companion),
        companion=companion,
    )


def run_spec_checks(
    specs: Sequence[Any],
    profile_name: str,
    jobs: int = 1,
    dispatch: str = "batched",
    horizon: Optional[float] = None,
    evaluate: bool = True,
    shards: Optional[int] = None,
) -> list:
    """Run *already-built* scenario specs with per-shard evaluation.

    The shard layer under :func:`run_scenario_checks`, exposed directly
    so callers that build specs themselves (the scenario fuzzer, ad-hoc
    compositions) shard through the same pool with the same determinism
    guarantee: checks are identical whatever the job count or dispatch
    mode, in spec order.
    """
    jobs_list = [
        _CheckJob(
            spec=spec,
            profile_name=profile_name,
            dispatch=dispatch,
            horizon=horizon,
            evaluate=evaluate,
            shards=shards,
        )
        for spec in specs
    ]
    if jobs is None or jobs <= 1 or len(jobs_list) <= 1:
        return [_check_one(job) for job in jobs_list]
    with _pool(min(jobs, len(jobs_list))) as pool:
        return pool.map(_check_one, jobs_list, chunksize=1)


def run_scenario_checks(
    names: Optional[Sequence[str]] = None,
    profile: Any = None,
    jobs: int = 1,
    dispatch: str = "batched",
    horizon: Optional[float] = None,
    evaluate: bool = True,
    shards: Optional[int] = None,
) -> list:
    """Run a scenario matrix *with expectation evaluation per shard*.

    Like :func:`run_scenario_matrix`, but each shard also runs the
    static companion any :class:`AdaptiveBeatsStatic`-style expectation
    needs and evaluates the spec's expectations in the worker, returning
    :class:`~repro.scenarios.expectations.ScenarioCheck`s in name order.
    Determinism carries over: the checks are identical whatever the job
    count or dispatch mode. ``evaluate=False`` captures results only —
    baseline updates use it to skip companion runs whose checks would be
    discarded.
    """
    from repro.experiments.profiles import get_profile
    from repro.scenarios.registry import get_scenario, scenario_names

    if names is None:
        names = scenario_names()
    resolved = profile if profile is not None else get_profile()
    return run_spec_checks(
        [get_scenario(name, resolved) for name in names],
        profile_name=resolved.name,
        jobs=jobs,
        dispatch=dispatch,
        horizon=horizon,
        evaluate=evaluate,
        shards=shards,
    )


def _collect_once(spec: RunSpec) -> MetricsCollector:
    cluster = build_cluster(spec)
    try:
        cluster.run(until=spec.duration)
        return cluster.metrics
    finally:
        cluster.close()


def merged_metrics(specs: Iterable[RunSpec], jobs: int = 1) -> MetricsCollector:
    """Run every spec and reduce all collectors into one.

    Shards must have non-colliding event ids to be meaningfully merged:
    distinct sender nodes per spec, or observation shards of one logical
    run. Independent seeds that reuse the same senders produce colliding
    ``EventId``s — :meth:`MetricsCollector.merge` raises on those; use
    :func:`run_specs` / :mod:`repro.experiments.replication` to compare
    runs statistically instead.
    """
    specs = list(specs)
    if not specs:
        raise ValueError("need at least one spec")
    if jobs is None or jobs <= 1 or len(specs) <= 1:
        collectors = [_collect_once(spec) for spec in specs]
    else:
        with _pool(min(jobs, len(specs))) as pool:
            collectors = pool.map(_collect_once, specs, chunksize=1)
    merged = collectors[0]
    for collector in collectors[1:]:
        merged.merge(collector)
    return merged


# ----------------------------------------------------------------------
# machine-readable output
# ----------------------------------------------------------------------
def to_jsonable(value: Any) -> Any:
    """Recursively convert dataclasses/tuples and sanitise NaN for JSON."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None  # NaN/inf have no strict-JSON representation
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def results_to_jsonable(results: Sequence[RunResult]) -> list[dict]:
    """A result list as strict-JSON-safe dicts, in order."""
    return [to_jsonable(r) for r in results]
