"""The shipped scenario library.

Every adverse condition the paper (and the related gossip literature)
motivates, as a registered, profile-scaled
:class:`~repro.scenarios.spec.ScenarioSpec`. All times inside a builder
are expressed as fractions of ``profile.duration`` so the same scenario
runs at paper scale, quick scale, or a test-sized profile without
editing its definition. Run one with::

    python -m repro.experiments run-scenario correlated-loss
    python -m repro.experiments run-scenario flash-crowd --driver threaded

or build it in code via :func:`repro.scenarios.get_scenario`.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import AdaptiveConfig
from repro.experiments.profiles import Profile
from repro.scenarios.conditions import (
    BandwidthCap,
    BufferSqueeze,
    CorrelatedLoss,
    CrashGroup,
    LoadSpike,
    LossyLinks,
    OneWayPartition,
    Partition,
    RollingChurn,
    SlowReceivers,
)
from repro.scenarios.expectations import (
    AdaptiveBeatsStatic,
    ConvergenceWithin,
    NoDroppedSenders,
    RedundancyAtMost,
    ReliabilityAtLeast,
)
from repro.scenarios.registry import scenario
from repro.scenarios.spec import FixedLinks, ScenarioSpec, SenderSpec, WanClusters
from repro.sim.network import BernoulliLoss

__all__ = []  # scenarios are consumed through the registry, not imports

# Expectation thresholds are regression *floors*, not aspirations: each
# sits below the metric observed at both the smoke and the quick scale
# (see check-scenarios) with enough margin that only a behaviour change
# — not profile scaling — can trip it. Exact values are pinned by the
# baselines; these gates catch qualitative collapses (reliability
# cratering, redundancy exploding, a sender silenced).


def _adaptive(profile: Profile, initial_rate: float = 8.0) -> AdaptiveConfig:
    return AdaptiveConfig(age_critical=profile.tau_hint, initial_rate=initial_rate)


def _senders(profile: Profile, load=None, **kw) -> tuple[SenderSpec, ...]:
    """The profile's sender placement at ``load`` total msg/s."""
    ids = profile.sender_ids()
    total = profile.offered_load if load is None else load
    return tuple(SenderSpec(node, total / len(ids), **kw) for node in ids)


def _tail_non_senders(profile: Profile, count: int) -> tuple:
    """The ``count`` highest node ids that are not senders (safe to kill)."""
    senders = set(profile.sender_ids())
    picked = []
    for node in range(profile.n_nodes - 1, -1, -1):
        if node not in senders:
            picked.append(node)
        if len(picked) == count:
            break
    return tuple(sorted(picked))


def _base(profile: Profile, name: str, summary: str, seed_offset: int, **kw) -> ScenarioSpec:
    params = dict(
        name=name,
        summary=summary,
        n_nodes=profile.n_nodes,
        protocol="adaptive",
        system=profile.system(),
        adaptive=_adaptive(profile),
        senders=_senders(profile),
        duration=profile.duration,
        warmup=profile.warmup,
        drain=profile.drain,
        seed=profile.seed + seed_offset,
    )
    params.update(kw)
    return ScenarioSpec(**params)


@scenario(
    "overload-baseline",
    expectations=(
        ReliabilityAtLeast(0.80),
        AdaptiveBeatsStatic(0.10),
        RedundancyAtMost(8.0),
        NoDroppedSenders(),
    ),
)
def overload_baseline(profile: Profile) -> ScenarioSpec:
    """The paper's core setting: offered load exceeds buffer capacity."""
    return _base(
        profile,
        "overload-baseline",
        "offered load above buffer capacity; adaptation must throttle",
        seed_offset=1,
    )


@scenario(
    "wan-clustered",
    expectations=(
        ReliabilityAtLeast(0.80),
        ConvergenceWithin(5.0),
        NoDroppedSenders(),
    ),
)
def wan_clustered(profile: Profile) -> ScenarioSpec:
    """Three WAN sites: cheap intra-site links, expensive cross-site links."""
    return _base(
        profile,
        "wan-clustered",
        "three-site WAN topology with expensive cross-site links",
        seed_offset=2,
        topology=WanClusters(n_clusters=3),
        senders=_senders(profile, load=0.5 * profile.offered_load),
    )


@scenario(
    "flash-crowd",
    expectations=(
        ReliabilityAtLeast(0.90),
        AdaptiveBeatsStatic(0.15),
        NoDroppedSenders(),
    ),
)
def flash_crowd(profile: Profile) -> ScenarioSpec:
    """A 4x load spike hits a comfortably-loaded group mid-run."""
    d = profile.duration
    return _base(
        profile,
        "flash-crowd",
        "sudden 4x offered-load spike against a comfortable baseline",
        seed_offset=3,
        senders=_senders(profile, load=0.3 * profile.offered_load),
    ).stressed(LoadSpike(time=0.4 * d, duration=0.25 * d, factor=4.0))


@scenario(
    "correlated-loss",
    expectations=(
        ReliabilityAtLeast(0.90, metric="avg_receiver_fraction"),
        ConvergenceWithin(6.0),
        NoDroppedSenders(),
    ),
)
def correlated_loss(profile: Profile) -> ScenarioSpec:
    """The §5 caveat: a heavy correlated-loss burst on a healthy group."""
    d = profile.duration
    big = profile.buffer_sizes[-1]
    return _base(
        profile,
        "correlated-loss",
        "75% loss burst mid-run; loss is not read as congestion",
        seed_offset=4,
        system=profile.system(big),
        adaptive=_adaptive(profile, initial_rate=8.0),
        senders=_senders(profile, load=0.5 * big),
    ).stressed(CorrelatedLoss(time=0.45 * d, duration=0.2 * d, p=0.75))


@scenario(
    "rolling-churn",
    expectations=(
        ReliabilityAtLeast(0.70),
        ReliabilityAtLeast(0.90, metric="avg_receiver_fraction"),
        NoDroppedSenders(),
    ),
)
def rolling_churn(profile: Profile) -> ScenarioSpec:
    """Rolling crash/rejoin over partial membership views."""
    d = profile.duration
    churned = _tail_non_senders(profile, max(2, profile.n_nodes // 6))
    return _base(
        profile,
        "rolling-churn",
        "nodes crash and rejoin on a cadence, over partial views",
        seed_offset=5,
        membership="partial",
        view_size=min(8, profile.n_nodes - 1),
        senders=_senders(profile, load=0.5 * profile.offered_load),
    ).stressed(
        RollingChurn(
            start=0.25 * d,
            interval=0.05 * d,
            nodes=churned,
            rejoin_after=0.1 * d,
            action="crash",
        )
    )


@scenario(
    "partition-heal",
    expectations=(
        ReliabilityAtLeast(0.95),
        RedundancyAtMost(25.0),
        NoDroppedSenders(),
    ),
)
def partition_heal(profile: Profile) -> ScenarioSpec:
    """The network splits in two mid-run, then heals."""
    d = profile.duration
    # events must outlive the partition to be recovered after the heal
    system = dataclasses.replace(
        profile.system(profile.buffer_sizes[-1]), max_age=max(profile.max_age, 25)
    )
    return _base(
        profile,
        "partition-heal",
        "clean two-way partition mid-run, healed before the drain",
        seed_offset=6,
        system=system,
        senders=_senders(profile, load=0.3 * profile.offered_load),
    ).stressed(Partition(time=0.3 * d, duration=0.2 * d, n_groups=2))


@scenario(
    "slow-receivers",
    expectations=(
        ReliabilityAtLeast(0.95),
        RedundancyAtMost(8.0),
        NoDroppedSenders(),
    ),
)
def slow_receivers(profile: Profile) -> ScenarioSpec:
    """A fifth of the group is quietly under-provisioned from the start."""
    return _base(
        profile,
        "slow-receivers",
        "20% of nodes run with quarter-size buffers from t=0",
        seed_offset=7,
    ).stressed(
        SlowReceivers(capacity=max(5, profile.fig2_buffer // 4), fraction=0.2)
    )


@scenario(
    "buffer-flap",
    expectations=(
        ReliabilityAtLeast(0.95),
        ConvergenceWithin(5.0),
        NoDroppedSenders(),
    ),
)
def buffer_flap(profile: Profile) -> ScenarioSpec:
    """The Figure 9 dynamic: buffers shrink mid-run, partially recover."""
    d = profile.duration
    return _base(
        profile,
        "buffer-flap",
        "Figure 9: buffers shrink mid-run and only partially recover",
        seed_offset=8,
        system=profile.system(profile.fig9_base_buffer),
        adaptive=_adaptive(profile, initial_rate=12.0),
    ).stressed(
        BufferSqueeze(
            time=0.33 * d,
            capacity=profile.fig9_low_buffer,
            fraction=profile.fig9_frac,
            restore_at=0.66 * d,
            restore_to=profile.fig9_mid_buffer,
        )
    )


@scenario(
    "pubsub-hotspot",
    expectations=(
        ReliabilityAtLeast(0.95),
        NoDroppedSenders(),
    ),
)
def pubsub_hotspot(profile: Profile) -> ScenarioSpec:
    """One hot publisher; 40% of members silently split their buffer
    budget across extra topics mid-run (the §1 pub/sub motivation)."""
    d = profile.duration
    ids = profile.sender_ids()
    hot, rest = ids[0], ids[1:]
    load = profile.offered_load
    senders = (SenderSpec(hot, 0.6 * load),) + tuple(
        SenderSpec(node, 0.4 * load / max(1, len(rest))) for node in rest
    )
    return _base(
        profile,
        "pubsub-hotspot",
        "hot publisher; 40% of members lose 5/6 of their buffers mid-run",
        seed_offset=9,
        senders=senders,
    ).stressed(
        BufferSqueeze(
            time=0.4 * d,
            capacity=max(5, profile.fig2_buffer // 6),
            fraction=0.4,
        )
    )


@scenario(
    "catastrophic-crash",
    expectations=(
        ReliabilityAtLeast(0.80),
        NoDroppedSenders(),
    ),
)
def catastrophic_crash(profile: Profile) -> ScenarioSpec:
    """A quarter of the group crashes at one instant; restarts later."""
    d = profile.duration
    victims = _tail_non_senders(profile, max(2, profile.n_nodes // 4))
    return _base(
        profile,
        "catastrophic-crash",
        "correlated crash of a quarter of the group, restart later",
        seed_offset=10,
        senders=_senders(profile, load=0.4 * profile.offered_load),
    ).stressed(
        CrashGroup(time=0.4 * d, nodes=victims, restart_after=0.3 * d)
    )


@scenario(
    "congested-switch",
    expectations=(
        ReliabilityAtLeast(0.85),
        ConvergenceWithin(6.0),
        NoDroppedSenders(),
    ),
)
def congested_switch(profile: Profile) -> ScenarioSpec:
    """A bandwidth cap throttles the whole fabric for a window, on top of
    a lightly lossy LAN — resource exhaustion below the protocol."""
    d = profile.duration
    # cap well below the gossip traffic a healthy round produces
    cap = profile.n_nodes * profile.fanout * 0.5 / profile.gossip_period
    return _base(
        profile,
        "congested-switch",
        "fabric-wide bandwidth cap window over a lightly lossy LAN",
        seed_offset=11,
        baseline_loss=BernoulliLoss(0.01),
        senders=_senders(profile, load=0.3 * profile.offered_load),
    ).stressed(BandwidthCap(time=0.4 * d, duration=0.2 * d, rate=cap))


@scenario(
    "mega-flood",
    expectations=(
        # atomicity collapses during the spike at quick scale (plain
        # lpbcast has no admission control to throttle it), so the gate
        # rides the Figure 8(a) axis, which stays high at every scale
        ReliabilityAtLeast(0.80, metric="avg_receiver_fraction"),
        RedundancyAtMost(10.0),
        NoDroppedSenders(),
    ),
)
def mega_flood(profile: Profile) -> ScenarioSpec:
    """A flash crowd on the round-synchronous lossless regime the
    columnar vector executor (:mod:`repro.sim.vector`) accelerates:
    plain lpbcast, fixed round phase, constant sub-period link delay.
    Run it at scale with ``REPRO_PROFILE=mega run-scenario mega-flood
    --dispatch vector``; at any other profile it behaves like a
    jitter-free flash-crowd and stays byte-identical across dispatch
    modes."""
    d = profile.duration
    return _base(
        profile,
        "mega-flood",
        "flash crowd on the round-synchronous regime, vector-accelerable",
        seed_offset=13,
        protocol="lpbcast",
        system=dataclasses.replace(
            profile.system(), round_phase=0.0, round_jitter=0.0
        ),
        adaptive=None,
        topology=FixedLinks(0.01),
        senders=_senders(profile, load=0.3 * profile.offered_load),
    ).stressed(LoadSpike(time=0.4 * d, duration=0.25 * d, factor=4.0))


# ----------------------------------------------------------------------
# the mega chaos family: the library's signature faulted scenarios,
# restated in the round-synchronous lpbcast regime the columnar vector
# executor accelerates. Each keeps its namesake's fault shape but pins
# protocol/schedule/topology so `--dispatch vector` engages the mega
# lane instead of falling back — `REPRO_PROFILE=mega run-scenario
# mega-correlated-loss --dispatch vector` runs 10k faulted nodes in
# seconds. Restart instants are snapped to the round grid (the lane
# only re-admits nodes on tick boundaries).
# ----------------------------------------------------------------------
def _mega_base(profile: Profile, name: str, summary: str, seed_offset: int, **kw):
    params = dict(
        protocol="lpbcast",
        system=dataclasses.replace(
            profile.system(), round_phase=0.0, round_jitter=0.0
        ),
        adaptive=None,
        topology=FixedLinks(0.01),
        senders=_senders(profile, load=0.3 * profile.offered_load),
    )
    params.update(kw)
    return _base(profile, name, summary, seed_offset, **params)


@scenario(
    "mega-correlated-loss",
    expectations=(
        ReliabilityAtLeast(0.75, metric="avg_receiver_fraction"),
        RedundancyAtMost(20.0),
        NoDroppedSenders(),
    ),
)
def mega_correlated_loss(profile: Profile) -> ScenarioSpec:
    """correlated-loss on the vector-accelerable regime: the 75% loss
    burst against plain lpbcast, whose fixed fanout must ride it out on
    redundancy alone (no adaptive round acceleration to lean on)."""
    d = profile.duration
    return _mega_base(
        profile,
        "mega-correlated-loss",
        "75% loss burst on the round-synchronous lpbcast regime",
        seed_offset=16,
    ).stressed(CorrelatedLoss(time=0.45 * d, duration=0.2 * d, p=0.75))


@scenario(
    "mega-partition-heal",
    expectations=(
        ReliabilityAtLeast(0.75, metric="avg_receiver_fraction"),
        NoDroppedSenders(),
    ),
)
def mega_partition_heal(profile: Profile) -> ScenarioSpec:
    """partition-heal on the vector-accelerable regime; buffered events
    must outlive the split for the heal to recover them."""
    d = profile.duration
    system = dataclasses.replace(
        profile.system(profile.buffer_sizes[-1]),
        round_phase=0.0,
        round_jitter=0.0,
        max_age=max(profile.max_age, 25),
    )
    return _mega_base(
        profile,
        "mega-partition-heal",
        "two-way partition and heal on the round-synchronous lpbcast regime",
        seed_offset=17,
        system=system,
    ).stressed(Partition(time=0.3 * d, duration=0.2 * d, n_groups=2))


@scenario(
    "mega-catastrophic-crash",
    expectations=(
        ReliabilityAtLeast(0.60, metric="avg_receiver_fraction"),
        NoDroppedSenders(),
    ),
)
def mega_catastrophic_crash(profile: Profile) -> ScenarioSpec:
    """catastrophic-crash on the vector-accelerable regime: a quarter of
    the group crashes mid-run and restarts (columns zeroed, old
    identity) on a round boundary."""
    d = profile.duration
    period = profile.gossip_period
    victims = _tail_non_senders(profile, max(2, profile.n_nodes // 4))
    crash_at = 0.4 * d
    # the lane re-admits nodes on round ticks only: snap the restart
    restart_at = round(0.7 * d / period) * period
    return _mega_base(
        profile,
        "mega-catastrophic-crash",
        "quarter of the group crashes, restarts on a round boundary",
        seed_offset=18,
    ).stressed(
        CrashGroup(time=crash_at, nodes=victims, restart_after=restart_at - crash_at)
    )


@scenario(
    "mega-flaky-edge",
    expectations=(
        ReliabilityAtLeast(0.75, metric="avg_receiver_fraction"),
        RedundancyAtMost(20.0),
        NoDroppedSenders(),
    ),
)
def mega_flaky_edge(profile: Profile) -> ScenarioSpec:
    """flaky-edge on the vector-accelerable regime. The flaky set is a
    bounded explicit link list (not a node fraction): a fraction-based
    matrix is O(n^2) entries at 10k nodes, and per-link loss overlapping
    a Bernoulli window already forces the lane's sequential loss path —
    the regime this scenario exists to exercise."""
    d = profile.duration
    n = profile.n_nodes
    flaky = _tail_non_senders(profile, min(16, max(2, n // 8)))
    links = set()
    for node in flaky:
        for k in range(8):
            peer = (node * 7 + 13 + k * 97) % n
            if peer != node:
                links.add((node, peer))
                links.add((peer, node))
    return _mega_base(
        profile,
        "mega-flaky-edge",
        "flaky minority links plus an ambient loss burst, sequential-loss path",
        seed_offset=19,
    ).stressed(
        LossyLinks(time=0.3 * d, duration=0.3 * d, p=0.6, pairs=tuple(sorted(links))),
        CorrelatedLoss(time=0.35 * d, duration=0.2 * d, p=0.2),
    )


@scenario(
    "giga-flood",
    expectations=(
        # same gate as mega-flood: the Figure 8(a) axis stays high at
        # every scale even while spike-time atomicity collapses
        ReliabilityAtLeast(0.80, metric="avg_receiver_fraction"),
        RedundancyAtMost(10.0),
        NoDroppedSenders(),
    ),
)
def giga_flood(profile: Profile) -> ScenarioSpec:
    """mega-flood's flash crowd at the multicore lane's home scale.
    Run it at 100k nodes with ``REPRO_PROFILE=giga run-scenario
    giga-flood --dispatch vector --shards 0`` (auto shard count); at any
    other profile it behaves like a jitter-free flash-crowd and stays
    byte-identical across dispatch modes and shard counts."""
    d = profile.duration
    return _mega_base(
        profile,
        "giga-flood",
        "flash crowd at 100k-node scale for the sharded vector lane",
        seed_offset=20,
    ).stressed(LoadSpike(time=0.4 * d, duration=0.25 * d, factor=4.0))


@scenario(
    "asymmetric-uplink",
    expectations=(
        ReliabilityAtLeast(0.80, metric="avg_receiver_fraction"),
        RedundancyAtMost(25.0),
        NoDroppedSenders(),
    ),
)
def asymmetric_uplink(profile: Profile) -> ScenarioSpec:
    """Half the group loses its *uplink* mid-run: it still hears the rest
    but cannot speak to it (the one-way cut — a NATed rack, a half-broken
    transceiver). Gossip pulls nothing back from the mute half, so its
    events age out unseen unless the cut heals in time."""
    d = profile.duration
    # events must outlive the cut to be recovered after it heals
    system = dataclasses.replace(
        profile.system(profile.buffer_sizes[-1]), max_age=max(profile.max_age, 25)
    )
    return _base(
        profile,
        "asymmetric-uplink",
        "directed cut: the upper half can hear but not speak, then heals",
        seed_offset=14,
        system=system,
        senders=_senders(profile, load=0.3 * profile.offered_load),
    ).stressed(
        OneWayPartition(time=0.3 * d, duration=0.2 * d, blocked=((1, 0),))
    )


@scenario(
    "flaky-edge",
    expectations=(
        ReliabilityAtLeast(0.85, metric="avg_receiver_fraction"),
        RedundancyAtMost(8.0),
        NoDroppedSenders(),
    ),
)
def flaky_edge(profile: Profile) -> ScenarioSpec:
    """A fifth of the group sits behind flaky links (60% per-link loss,
    both directions) while a mild ambient loss burst overlaps the same
    window — heterogeneous per-link degradation composed with a
    symmetric knob, legal because each is its own network knob."""
    d = profile.duration
    return _base(
        profile,
        "flaky-edge",
        "flaky minority links at 60% loss, overlapping a mild ambient burst",
        seed_offset=15,
        senders=_senders(profile, load=0.4 * profile.offered_load),
    ).stressed(
        LossyLinks(time=0.3 * d, duration=0.3 * d, p=0.6, fraction=0.2),
        CorrelatedLoss(time=0.35 * d, duration=0.2 * d, p=0.2),
    )


@scenario(
    "bursty-onoff",
    expectations=(
        ReliabilityAtLeast(0.75),
        RedundancyAtMost(8.0),
        NoDroppedSenders(),
    ),
)
def bursty_onoff(profile: Profile) -> ScenarioSpec:
    """On/off senders: bursts at twice the sustainable rate, then silence
    (exercises the unused-grant decay of Figure 5(c))."""
    d = profile.duration
    ids = profile.sender_ids()
    rate_each = 2.0 * profile.offered_load / len(ids)
    senders = tuple(
        SenderSpec(node, rate_each, arrivals="onoff", on=0.08 * d, off=0.08 * d)
        for node in ids
    )
    return _base(
        profile,
        "bursty-onoff",
        "on/off bursts at 2x sustainable rate, exercising grant decay",
        seed_offset=12,
        senders=senders,
    )
