"""Scenario expectations and the structured scenario result.

The scenario subsystem used to be a demo: runs printed metrics and
"passed" as long as they did not crash. This module turns it into a
regression oracle. Two pieces:

* :class:`ScenarioResult` — one picklable, JSON-able result type for
  *both* drivers. It unifies the simulator's
  :class:`~repro.experiments.harness.RunResult` distillation and the
  threaded :class:`~repro.scenarios.runner.ThreadedScenarioReport` into
  a flat ``name -> MetricValue`` mapping where every metric carries its
  provenance (``"sim:delivery"``, ``"threaded:transport"``, ...), so an
  expectation or a baseline diff can always say *where* a number came
  from.

* The expectation vocabulary — small frozen values
  (:class:`ReliabilityAtLeast`, :class:`RedundancyAtMost`,
  :class:`ConvergenceWithin`, :class:`NoDroppedSenders`,
  :class:`AdaptiveBeatsStatic`) attached to a
  :class:`~repro.scenarios.spec.ScenarioSpec` (usually via the
  ``@scenario(..., expectations=...)`` registry decorator) and evaluated
  against a :class:`ScenarioResult` with
  :func:`evaluate_expectations`. An expectation whose metric the
  executing driver does not report is *skipped*, not failed — the
  threaded driver cannot measure atomicity, and that must not turn every
  threaded run red.

:class:`AdaptiveBeatsStatic` is the paper's headline claim as a check:
it compares the scenario's run against a *companion* run of the same
spec with the static (non-adaptive) protocol and demands the adaptive
metric wins by a margin. The sweep runner
(:func:`~repro.experiments.sweep.run_scenario_checks`) executes the
companion in the same shard as the scenario itself.

Everything here is deliberately dependency-light: results are built by
duck-typing over the drivers' result objects, so this module imports
neither the experiment harness nor the runtimes and stays cycle-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.metrics.convergence import convergence_rounds

__all__ = [
    "MetricValue",
    "ScenarioResult",
    "ScenarioCheck",
    "ExpectationCheck",
    "Expectation",
    "ReliabilityAtLeast",
    "RedundancyAtMost",
    "ConvergenceWithin",
    "NoDroppedSenders",
    "AdaptiveBeatsStatic",
    "evaluate_expectations",
    "needs_companion",
]


# ----------------------------------------------------------------------
# the unified result type
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class MetricValue:
    """One measured quantity, where it was measured, and what it is.

    ``kind`` drives tolerance-banded baseline comparison (sim compares
    exactly regardless): ``"count"`` (non-negative integral totals —
    relative band plus absolute slack for near-zero wobble),
    ``"fraction"`` (bounded [0, 1] — absolute band), or ``"ratio"``
    (unbounded rates/ratios — relative band). Explicit metadata, not a
    value-shape heuristic: 0 vs 1 is a harmless count wobble but a total
    fraction collapse, and only the producer knows which it is.
    """

    value: float
    source: str  # provenance, e.g. "sim:delivery", "threaded:transport"
    kind: str = "ratio"  # "count" | "fraction" | "ratio"


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario run, as a flat named-metric mapping.

    Every driver produces this shape (:meth:`from_sim` /
    :meth:`from_threaded` / :meth:`from_process`), which is what
    expectations evaluate and baselines snapshot. Picklable, and JSON-able via
    :func:`repro.experiments.sweep.to_jsonable`.
    """

    scenario: str
    driver: str  # "sim" | "threaded" | "process"
    profile: str = ""
    n_nodes: int = 0
    metrics: Mapping[str, MetricValue] = field(default_factory=dict)
    skipped: tuple[str, ...] = ()  # conditions the driver could not impose
    injected: tuple[str, ...] = ()  # conditions the driver lowered (threaded)

    def get(self, name: str) -> Optional[float]:
        """The metric's value, or None if this driver did not report it."""
        entry = self.metrics.get(name)
        return None if entry is None else entry.value

    def source(self, name: str) -> Optional[str]:
        entry = self.metrics.get(name)
        return None if entry is None else entry.source

    # ------------------------------------------------------------------
    # constructors, one per driver
    # ------------------------------------------------------------------
    @classmethod
    def from_sim(cls, result, profile: str = "") -> "ScenarioResult":
        """Distil a :class:`~repro.experiments.harness.RunResult`."""
        spec = result.spec
        delivery = result.delivery
        period = spec.system.gossip_period
        latency = delivery.mean_latency
        metrics = {
            "messages": MetricValue(float(delivery.messages), "sim:delivery", "count"),
            "atomicity": MetricValue(delivery.atomicity, "sim:delivery", "fraction"),
            "avg_receiver_fraction": MetricValue(
                delivery.avg_receiver_fraction, "sim:delivery", "fraction"
            ),
            "complete_fraction": MetricValue(
                delivery.complete_fraction, "sim:delivery", "fraction"
            ),
            "redundancy": MetricValue(result.gossip_redundancy, "sim:gossip"),
            "delivery_redundancy": MetricValue(delivery.redundancy, "sim:delivery"),
            "mean_latency_s": MetricValue(latency, "sim:convergence"),
            "convergence_rounds": MetricValue(
                convergence_rounds(latency, period), "sim:convergence"
            ),
            "offered_rate": MetricValue(result.offered_rate, "sim:rates"),
            "input_rate": MetricValue(result.input_rate, "sim:rates"),
            "output_rate": MetricValue(result.output_rate, "sim:rates"),
            "drop_age_mean": MetricValue(result.drop_age_mean, "sim:drops"),
            "drops_overflow": MetricValue(result.drops_overflow, "sim:drops", "count"),
            "drops_age_out": MetricValue(result.drops_age_out, "sim:drops", "count"),
            "senders_total": MetricValue(
                float(result.senders_total), "sim:senders", "count"
            ),
            "senders_reached": MetricValue(
                float(result.senders_reached), "sim:senders", "count"
            ),
        }
        return cls(
            scenario=spec.scenario or spec.protocol,
            driver="sim",
            profile=profile,
            n_nodes=spec.n_nodes,
            metrics=metrics,
        )

    @classmethod
    def from_threaded(cls, report, profile: str = "") -> "ScenarioResult":
        """Distil a :class:`~repro.scenarios.runner.ThreadedScenarioReport`.

        Wall-clock quantities (``wall_seconds``, ``time_scale``) are
        deliberately *not* metrics: they describe the run's clock, vary
        machine to machine, and must never enter a baseline.
        """
        src = "threaded:transport"
        metrics = {
            "offers": MetricValue(float(report.offers), "threaded:feeder", "count"),
            "admitted": MetricValue(float(report.admitted), src, "count"),
            "delivered_total": MetricValue(
                float(report.delivered_total), src, "count"
            ),
            "delivered_min": MetricValue(float(report.delivered_min), src, "count"),
            "delivered_max": MetricValue(float(report.delivered_max), src, "count"),
            "admit_fraction": MetricValue(
                report.admitted / report.offers if report.offers else math.nan,
                "threaded:feeder",
                "fraction",
            ),
            "delivery_balance": MetricValue(
                report.delivered_min / report.delivered_max
                if report.delivered_max
                else math.nan,
                src,
                "fraction",
            ),
            "redundancy": MetricValue(
                report.duplicates_seen / report.delivered_total
                if report.delivered_total
                else math.nan,
                "threaded:protocol",
            ),
        }
        return cls(
            scenario=report.scenario,
            driver="threaded",
            profile=profile,
            n_nodes=report.n_nodes,
            metrics=metrics,
            skipped=tuple(report.skipped),
            injected=tuple(getattr(report, "injected", ())),
        )

    @classmethod
    def from_process(cls, report, profile: str = "") -> "ScenarioResult":
        """Distil a :class:`~repro.scenarios.runner.ProcessScenarioReport`.

        Same metric names as :meth:`from_threaded` — the two live
        drivers report an identical surface, so a process baseline diffs
        against the same vocabulary and expectations need no per-driver
        cases — with ``"process:"`` provenance. Wall-clock quantities
        and worker plumbing counters (``bind_errors``, ``port_attempts``)
        stay out of the metric map for the same reason wall_seconds
        does: they describe the run's machinery, not the protocol.
        """
        src = "process:transport"
        metrics = {
            "offers": MetricValue(float(report.offers), "process:feeder", "count"),
            "admitted": MetricValue(float(report.admitted), src, "count"),
            "delivered_total": MetricValue(
                float(report.delivered_total), src, "count"
            ),
            "delivered_min": MetricValue(float(report.delivered_min), src, "count"),
            "delivered_max": MetricValue(float(report.delivered_max), src, "count"),
            "admit_fraction": MetricValue(
                report.admitted / report.offers if report.offers else math.nan,
                "process:feeder",
                "fraction",
            ),
            "delivery_balance": MetricValue(
                report.delivered_min / report.delivered_max
                if report.delivered_max
                else math.nan,
                src,
                "fraction",
            ),
            "redundancy": MetricValue(
                report.duplicates_seen / report.delivered_total
                if report.delivered_total
                else math.nan,
                "process:protocol",
            ),
        }
        return cls(
            scenario=report.scenario,
            driver="process",
            profile=profile,
            n_nodes=report.n_nodes,
            metrics=metrics,
            skipped=tuple(report.skipped),
            injected=tuple(getattr(report, "injected", ())),
        )


# ----------------------------------------------------------------------
# expectation checks
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ExpectationCheck:
    """The outcome of evaluating one expectation against one result."""

    expectation: str  # the expectation's repr, e.g. "ReliabilityAtLeast(0.95)"
    metric: str
    passed: bool
    observed: Optional[float] = None
    bound: Optional[float] = None
    skipped: bool = False  # metric unavailable on this driver — not a failure
    detail: str = ""

    @property
    def verdict(self) -> str:
        return "SKIP" if self.skipped else ("PASS" if self.passed else "FAIL")


def _skip(expectation: "Expectation", metric: str, why: str) -> ExpectationCheck:
    return ExpectationCheck(
        expectation=repr(expectation),
        metric=metric,
        passed=True,
        skipped=True,
        detail=why,
    )


class Expectation:
    """Base class: a frozen value with ``check(result, companion=None)``.

    Subclasses set ``metric`` (the :class:`ScenarioResult` entry they
    read) and implement :meth:`check`. ``companion_protocol`` is non-None
    for cross-run expectations; the check runner then executes the same
    scenario once more under that protocol and passes its result as
    ``companion``.
    """

    metric: str = ""
    companion_protocol: Optional[str] = None

    def check(
        self,
        result: ScenarioResult,
        companion: Optional[ScenarioResult] = None,
    ) -> ExpectationCheck:
        raise NotImplementedError


def _bound_check(
    exp: Expectation,
    result: ScenarioResult,
    bound: float,
    ok,
    relation: str,
) -> ExpectationCheck:
    observed = result.get(exp.metric)
    if observed is None:
        return _skip(exp, exp.metric, f"driver {result.driver!r} does not report it")
    if math.isnan(observed):
        return ExpectationCheck(
            expectation=repr(exp),
            metric=exp.metric,
            passed=False,
            observed=observed,
            bound=bound,
            detail="observed value is NaN (no data in the window)",
        )
    return ExpectationCheck(
        expectation=repr(exp),
        metric=exp.metric,
        passed=ok(observed),
        observed=observed,
        bound=bound,
        detail=f"{exp.metric}={observed:.4g} {relation} {bound:g}",
    )


@dataclass(frozen=True, repr=False)
class ReliabilityAtLeast(Expectation):
    """The paper's headline property: delivery reliability stays high.

    ``metric`` defaults to atomicity (share of messages reaching >95% of
    the group); pass ``metric="avg_receiver_fraction"`` for the softer
    Figure 8(a) reading.
    """

    threshold: float = 0.95
    metric: str = "atomicity"

    def __repr__(self) -> str:
        if self.metric == "atomicity":
            return f"ReliabilityAtLeast({self.threshold:g})"
        return f"ReliabilityAtLeast({self.threshold:g}, metric={self.metric!r})"

    def check(self, result, companion=None) -> ExpectationCheck:
        return _bound_check(
            self, result, self.threshold, lambda v: v >= self.threshold, ">="
        )


@dataclass(frozen=True, repr=False)
class RedundancyAtMost(Expectation):
    """Gossip pays for reliability with duplicates — bound the price.

    ``redundancy`` is duplicate deliveries per unique delivery over the
    measurement window (the cost axis of the reliability-vs-cost
    envelope in De Florio & Blondia's gossip-family analysis).
    """

    ratio: float = 5.0
    metric: str = "redundancy"

    def __repr__(self) -> str:
        return f"RedundancyAtMost({self.ratio:g})"

    def check(self, result, companion=None) -> ExpectationCheck:
        return _bound_check(self, result, self.ratio, lambda v: v <= self.ratio, "<=")


@dataclass(frozen=True, repr=False)
class ConvergenceWithin(Expectation):
    """Mean dissemination latency, in gossip rounds, stays bounded."""

    rounds: float = 10.0
    metric: str = "convergence_rounds"

    def __repr__(self) -> str:
        return f"ConvergenceWithin({self.rounds:g})"

    def check(self, result, companion=None) -> ExpectationCheck:
        return _bound_check(self, result, self.rounds, lambda v: v <= self.rounds, "<=")


@dataclass(frozen=True, repr=False)
class NoDroppedSenders(Expectation):
    """Every sender got at least one message through to the group.

    A sender is *dropped* when none of its window messages reached
    anyone beyond the sender itself — the pathology where admission
    control or buffer pressure silences a member entirely.
    """

    metric: str = "senders_reached"

    def __repr__(self) -> str:
        return "NoDroppedSenders()"

    def check(self, result, companion=None) -> ExpectationCheck:
        reached = result.get("senders_reached")
        total = result.get("senders_total")
        if reached is None or total is None:
            return _skip(self, self.metric, f"driver {result.driver!r} does not report it")
        return ExpectationCheck(
            expectation=repr(self),
            metric=self.metric,
            passed=reached >= total,
            observed=reached,
            bound=total,
            detail=f"{reached:g} of {total:g} senders reached the group",
        )


@dataclass(frozen=True, repr=False)
class AdaptiveBeatsStatic(Expectation):
    """The adaptive protocol must beat the static one by ``margin``.

    Cross-run: the runner executes the scenario once more with
    ``companion_protocol`` (plain lpbcast — static buffering, no
    admission control) and this check demands
    ``adaptive >= static + margin`` on ``metric``. Skipped when no
    companion result is supplied (e.g. threaded runs).
    """

    margin: float = 0.0
    metric: str = "atomicity"
    companion_protocol: str = "lpbcast"

    def __repr__(self) -> str:
        if self.metric == "atomicity":
            return f"AdaptiveBeatsStatic({self.margin:g})"
        return f"AdaptiveBeatsStatic({self.margin:g}, metric={self.metric!r})"

    def check(self, result, companion=None) -> ExpectationCheck:
        if companion is None:
            return _skip(self, self.metric, "no companion (static) run available")
        ours = result.get(self.metric)
        theirs = companion.get(self.metric)
        if ours is None or theirs is None:
            return _skip(self, self.metric, f"driver {result.driver!r} does not report it")
        if math.isnan(ours) or math.isnan(theirs):
            return ExpectationCheck(
                expectation=repr(self),
                metric=self.metric,
                passed=False,
                observed=ours,
                bound=theirs,
                detail="NaN in adaptive or static run (no data in the window)",
            )
        return ExpectationCheck(
            expectation=repr(self),
            metric=self.metric,
            passed=ours >= theirs + self.margin,
            observed=ours,
            bound=theirs + self.margin,
            detail=(
                f"adaptive {self.metric}={ours:.4g} vs static "
                f"{theirs:.4g} + margin {self.margin:g}"
            ),
        )


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
def needs_companion(expectations: Sequence[Expectation]) -> Optional[str]:
    """The companion protocol the expectations require, if any."""
    for exp in expectations:
        if exp.companion_protocol is not None:
            return exp.companion_protocol
    return None


def evaluate_expectations(
    expectations: Sequence[Expectation],
    result: ScenarioResult,
    companion: Optional[ScenarioResult] = None,
) -> tuple[ExpectationCheck, ...]:
    """Evaluate every expectation against ``result``, in order."""
    return tuple(exp.check(result, companion) for exp in expectations)


@dataclass(frozen=True)
class ScenarioCheck:
    """One scenario run plus its evaluated expectations.

    This is what a check shard ships back across the process boundary:
    the distilled :class:`ScenarioResult` (and the static companion's,
    when one was required), never the raw collector.
    """

    scenario: str
    result: ScenarioResult
    checks: tuple[ExpectationCheck, ...] = ()
    companion: Optional[ScenarioResult] = None

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def failures(self) -> tuple[ExpectationCheck, ...]:
        return tuple(c for c in self.checks if not c.passed and not c.skipped)
