"""The scenario registry.

Builders register under a stable name with the :func:`scenario`
decorator; everything else — the CLI's ``run-scenario``/
``list-scenarios``, the sweep matrix, the determinism tests, the
examples — resolves scenarios by name through :func:`get_scenario`, so a
new adverse condition is one registered builder away from every harness
in the repo.

A builder is a function ``(profile) -> ScenarioSpec``: it receives an
experiment :class:`~repro.experiments.profiles.Profile` and scales the
scenario to it (group size, horizons, seeds), which keeps the quick and
paper scales in lockstep without duplicating definitions. Builders must
be deterministic — no RNG, no wall clock — so the same name always
denotes the same run.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.experiments.profiles import Profile, get_profile
from repro.scenarios.spec import ScenarioSpec

__all__ = ["scenario", "get_scenario", "list_scenarios", "scenario_names"]

ScenarioBuilder = Callable[[Profile], ScenarioSpec]

_REGISTRY: dict[str, tuple[ScenarioBuilder, str, tuple]] = {}


def scenario(name: str, summary: Optional[str] = None, expectations: tuple = ()):
    """Register a scenario builder under ``name``.

    ``summary`` defaults to the first line of the builder's docstring and
    is what ``list-scenarios`` prints. ``expectations`` are the
    scenario's regression gates (see
    :mod:`repro.scenarios.expectations`): :func:`get_scenario` attaches
    them to the built spec, so ``check-scenarios`` and
    :func:`~repro.experiments.sweep.run_scenario_checks` evaluate them
    on every run of the scenario — a builder may also set its own on the
    spec, which then take precedence.
    """

    def register(builder: ScenarioBuilder) -> ScenarioBuilder:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        text = summary
        if text is None:
            doc = (builder.__doc__ or "").strip()
            text = doc.splitlines()[0] if doc else ""
        _REGISTRY[name] = (builder, text, tuple(expectations))
        return builder

    return register


def _ensure_library() -> None:
    # The shipped scenarios self-register on import; do it lazily so
    # importing the registry (e.g. to define new scenarios) stays cheap
    # and cycle-free.
    import repro.scenarios.library  # noqa: F401


def get_scenario(name: str, profile: Optional[Profile] = None) -> ScenarioSpec:
    """Build the named scenario at ``profile`` scale (default: the
    environment-selected profile, see
    :func:`~repro.experiments.profiles.get_profile`)."""
    _ensure_library()
    try:
        builder, _, expectations = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None
    spec = builder(profile if profile is not None else get_profile())
    if spec.name != name:
        raise ValueError(
            f"builder for {name!r} produced a spec named {spec.name!r}"
        )
    if expectations and not spec.expectations:
        spec = spec.replace(expectations=expectations)
    return spec


def scenario_names() -> list[str]:
    """All registered names, sorted."""
    _ensure_library()
    return sorted(_REGISTRY)


def list_scenarios() -> list[tuple[str, str]]:
    """(name, summary) pairs for every registered scenario, sorted."""
    _ensure_library()
    return [(name, _REGISTRY[name][1]) for name in sorted(_REGISTRY)]
