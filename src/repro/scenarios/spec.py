"""The declarative scenario object.

A :class:`ScenarioSpec` composes everything that shapes one adverse
condition — topology, fault script, churn schedule, resource dynamics,
workload/sender shape, and protocol profile — into a single frozen,
picklable value. Drivers *instantiate* specs
(:meth:`repro.driver.Driver.from_scenario`), the experiment harness
lowers them to :class:`~repro.experiments.harness.RunSpec`s
(:func:`~repro.experiments.harness.spec_for_scenario`), and the registry
(:mod:`repro.scenarios.registry`) names them so the CLI, sweeps, tests
and examples all pull the same definitions instead of hand-wiring setup
code.

Two small declarative vocabularies live here because the objects they
replace are either unpicklable or imperative:

* :class:`SenderSpec` — one application sender (node, rate, arrival
  shape, active interval) instead of a live
  :class:`~repro.workload.senders.Sender`;
* the topology specs (:class:`LanLinks`, :class:`WanClusters`,
  :class:`FixedLinks`, :class:`HeavyTailLinks`) — value descriptions
  that ``build(n_nodes)`` into the latency models of
  :mod:`repro.sim.network` / :mod:`repro.sim.topology`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.config import AdaptiveConfig
from repro.gossip.config import SystemConfig
from repro.membership.churn import ChurnScript
from repro.sim.faults import CrashWindow, FaultScript
from repro.sim.network import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    LossModel,
    UniformLatency,
)
from repro.sim.topology import ClusteredTopology
from repro.workload.dynamics import ResourceScript
from repro.workload.senders import OnOffArrivals, PeriodicArrivals, PoissonArrivals

__all__ = [
    "SenderSpec",
    "LanLinks",
    "WanClusters",
    "FixedLinks",
    "HeavyTailLinks",
    "ScenarioSpec",
    "build_latency",
]


def build_latency(topology, n_nodes: int) -> Optional[LatencyModel]:
    """Lower a topology to a latency model.

    The one place that knows the convention: ``None`` keeps the driver
    default, an object with ``build(n_nodes)`` is a declarative topology
    spec, anything else is already a :class:`LatencyModel`.
    """
    if topology is None:
        return None
    if hasattr(topology, "build"):
        return topology.build(n_nodes)
    return topology


def _scale_sender(sender: "SenderSpec", scale: float) -> "SenderSpec":
    """A sender with its timeline (not its rate) scaled by ``scale``."""
    return dataclasses.replace(
        sender,
        start=sender.start * scale,
        stop=None if sender.stop is None else sender.stop * scale,
        on=sender.on * scale,
        off=sender.off * scale,
    )


def _scale_fault(fault, scale: float):
    """A fault window with every time field scaled by ``scale``."""
    if isinstance(fault, CrashWindow):
        return dataclasses.replace(
            fault,
            time=fault.time * scale,
            restart_at=None if fault.restart_at is None else fault.restart_at * scale,
        )
    return dataclasses.replace(
        fault, time=fault.time * scale, duration=fault.duration * scale
    )


# ----------------------------------------------------------------------
# workload shape
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class SenderSpec:
    """One application sender, declaratively.

    ``arrivals`` selects the arrival process: ``"periodic"`` (default),
    ``"poisson"``, or ``"onoff"`` (periodic at ``rate`` for ``on``
    seconds, silent for ``off`` — the grant-decay stressor).
    """

    node: Any
    rate: float
    arrivals: str = "periodic"
    on: float = 5.0
    off: float = 5.0
    start: float = 0.0
    stop: Optional[float] = None
    queue_limit: int = 100

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("sender rate must be > 0")
        if self.arrivals not in ("periodic", "poisson", "onoff"):
            raise ValueError(f"unknown arrival shape {self.arrivals!r}")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError("stop must be after start")

    def build_arrivals(self):
        """Materialise the arrival-process strategy object."""
        if self.arrivals == "poisson":
            return PoissonArrivals(self.rate)
        if self.arrivals == "onoff":
            return OnOffArrivals(self.rate, self.on, self.off)
        return PeriodicArrivals(self.rate)


# ----------------------------------------------------------------------
# topology specs
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class LanLinks:
    """The paper's setting: a jittered low-latency LAN."""

    low: float = 0.005
    high: float = 0.05

    def build(self, n_nodes: int) -> LatencyModel:
        return UniformLatency(self.low, self.high)


@dataclass(frozen=True, slots=True)
class FixedLinks:
    """Constant latency — the round-synchronous analysis regime."""

    delay: float = 0.01

    def build(self, n_nodes: int) -> LatencyModel:
        return ConstantLatency(self.delay)


@dataclass(frozen=True, slots=True)
class HeavyTailLinks:
    """Log-normal (heavy-tailed) latency — congested/overlay links."""

    median: float = 0.02
    sigma: float = 0.5
    cap: float = 2.0

    def build(self, n_nodes: int) -> LatencyModel:
        return LogNormalLatency(self.median, self.sigma, self.cap)


@dataclass(frozen=True, slots=True)
class WanClusters:
    """Multi-site WAN: contiguous blocks of nodes per site, cheap links
    inside a site, expensive links across sites."""

    n_clusters: int = 3
    intra: float = 0.005
    inter: float = 0.08
    jitter: float = 0.3

    def __post_init__(self) -> None:
        if self.n_clusters < 2:
            raise ValueError("need at least two clusters")

    def build(self, n_nodes: int) -> LatencyModel:
        per = max(1, n_nodes // self.n_clusters)
        cluster_of = {node: min(node // per, self.n_clusters - 1) for node in range(n_nodes)}
        return ClusteredTopology(cluster_of, self.intra, self.inter, self.jitter)


# ----------------------------------------------------------------------
# the scenario itself
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """A complete adverse condition as one picklable value.

    Composition, not configuration: the fault/churn/resource scripts are
    the same declarative objects the layers already replay
    (:class:`~repro.sim.faults.FaultScript`,
    :class:`~repro.membership.churn.ChurnScript`,
    :class:`~repro.workload.dynamics.ResourceScript`), so a scenario is
    just their product with a topology, a workload and a protocol
    profile. Stress conditions (:mod:`repro.scenarios.conditions`) fold
    themselves into these scripts via :meth:`stressed`.
    """

    name: str
    summary: str = ""
    # group & protocol profile
    n_nodes: int = 30
    protocol: str = "adaptive"
    system: SystemConfig = field(default_factory=SystemConfig)
    adaptive: Optional[AdaptiveConfig] = None
    rate_limit: Optional[float] = None
    aggregate: Optional[Any] = None
    membership: str = "full"
    view_size: Optional[int] = None
    # environment
    topology: Optional[Any] = None  # LanLinks/WanClusters/... or a LatencyModel
    baseline_loss: Optional[LossModel] = None
    # schedules
    senders: tuple[SenderSpec, ...] = ()
    faults: FaultScript = field(default_factory=FaultScript)
    churn: ChurnScript = field(default_factory=ChurnScript)
    resources: ResourceScript = field(default_factory=ResourceScript)
    # horizon
    duration: float = 120.0
    warmup: float = 30.0
    drain: float = 15.0
    seed: int = 0
    bucket_width: float = 1.0
    # regression gates: Expectation values evaluated against the run's
    # ScenarioResult by check-scenarios and run_scenario_checks; scale-
    # free (thresholds on fractions/ratios/rounds), so they survive
    # with_horizon. Usually attached by the registry decorator.
    expectations: tuple = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if self.n_nodes < 2:
            raise ValueError("need at least 2 nodes")
        if not self.senders:
            raise ValueError("a scenario needs at least one sender")
        if not 0 <= self.warmup < self.duration:
            raise ValueError("warmup must fall inside the run")
        if not 0 <= self.drain < self.duration - self.warmup:
            raise ValueError("drain must leave a non-empty window")
        if self.membership not in ("full", "partial"):
            raise ValueError(f"unknown membership kind {self.membership!r}")
        for sender in self.senders:
            if not 0 <= sender.node < self.n_nodes:
                raise ValueError(
                    f"sender node {sender.node!r} outside the initial group "
                    f"of {self.n_nodes}"
                )
        for expectation in self.expectations:
            if not callable(getattr(expectation, "check", None)):
                raise ValueError(
                    f"expectation {expectation!r} has no check() method"
                )
        self.faults.validate()

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def sender_ids(self) -> tuple:
        return tuple(s.node for s in self.senders)

    @property
    def offered_load(self) -> float:
        """Total initial offered load across senders (msg/s)."""
        return sum(s.rate for s in self.senders)

    @property
    def window(self) -> tuple[float, float]:
        return (self.warmup, self.duration - self.drain)

    def build_latency(self) -> Optional[LatencyModel]:
        """The latency model, materialised (None keeps the driver default)."""
        return build_latency(self.topology, self.n_nodes)

    @property
    def wire_conditions(self) -> bool:
        """Whether this scenario shapes the wire itself.

        True when a topology/latency model, a baseline loss model, or
        any network fault window (loss/partition/bandwidth — anything
        but a pure crash schedule) is present. The threaded driver uses
        this to decide whether endpoints need the
        :class:`~repro.runtime.transport.ChaosTransport` wrapper; crash
        windows and churn act on nodes, not the wire, and need none.
        """
        if self.topology is not None or self.baseline_loss is not None:
            return True
        return any(not isinstance(f, CrashWindow) for f in self.faults.faults)

    # ------------------------------------------------------------------
    # functional updates
    # ------------------------------------------------------------------
    def replace(self, **changes) -> "ScenarioSpec":
        """A copy with some fields changed (scripts are shared, not copied)."""
        return dataclasses.replace(self, **changes)

    def with_protocol(self, protocol: str, **changes) -> "ScenarioSpec":
        return self.replace(protocol=protocol, **changes)

    def with_horizon(self, duration: float) -> "ScenarioSpec":
        """Shrink/stretch the run, scaling the *whole timeline* with it.

        Warmup, drain, every fault/churn/resource event time, window
        durations and sender active intervals all scale by the same
        factor, so a shrunk scenario still exercises its condition —
        just faster. Rates, probabilities and capacities are left alone
        (the load:capacity regime is the scenario's identity). Used by
        smoke tests and ``--horizon``/``--quick`` CLI runs so every
        scenario can be exercised in seconds without editing its
        definition.
        """
        if duration <= 0:
            raise ValueError("duration must be > 0")
        scale = duration / self.duration
        return self.replace(
            duration=duration,
            warmup=self.warmup * scale,
            drain=self.drain * scale,
            senders=tuple(_scale_sender(s, scale) for s in self.senders),
            faults=FaultScript([_scale_fault(f, scale) for f in self.faults.faults]),
            churn=ChurnScript(
                [dataclasses.replace(e, time=e.time * scale) for e in self.churn.events]
            ),
            resources=ResourceScript(
                [dataclasses.replace(c, time=c.time * scale) for c in self.resources.changes]
            ),
        )

    def stressed(self, *conditions) -> "ScenarioSpec":
        """Fold composable stress conditions into this spec, in order.

        Each condition is any object with ``apply_to(spec) -> spec`` (see
        :mod:`repro.scenarios.conditions`); the result is a new spec —
        the original is never mutated.
        """
        spec = self
        for condition in conditions:
            spec = condition.apply_to(spec)
        return spec

    def expecting(self, *expectations) -> "ScenarioSpec":
        """A copy with these expectations appended, in order."""
        return self.replace(expectations=self.expectations + tuple(expectations))
