"""Seeded scenario fuzzing: thousands of valid specs from one integer.

The registry's scenarios are hand-written; this module *generates* them.
:class:`ScenarioFuzzer` derives one RNG per case index from a root seed
(:func:`~repro.sim.rng.derive_seed`, the repo's named-stream convention)
and composes a random — but always *valid* — :class:`ScenarioSpec`:
topology x faults x churn x workload, with window times allocated so no
two windows of one knob family overlap (the :class:`FaultScript`
validity bound). The same ``(seed, index)`` pair always produces the
same spec, so a nightly failure reproduces locally from the printed
command alone.

Instead of checked-in baselines, fuzzed specs carry *property-style*
expectations computed from the conditions themselves:

* a reliability floor as a function of the total injected loss exposure
  (the tuneable-robustness family: more injected adversity lowers the
  floor, but never below a collapse threshold);
* ``NoDroppedSenders`` whenever no crash window can silence anyone;
* a convergence bound whenever no partition can stall dissemination;
* a generous redundancy ceiling (evaluated on both drivers).

:func:`run_fuzz` executes a batch on either driver — the sim path
shards through :func:`~repro.experiments.sweep.run_spec_checks` (same
pool, same job-count determinism as ``check-scenarios``); the threaded
path runs serially (each run is wall-clock-paced) and additionally
fails a case whose conditions did not all lower (``skipped_count != 0``
is a parity bug, not bad luck).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from random import Random
from typing import Optional

from repro.scenarios.conditions import (
    BandwidthCap,
    BufferSqueeze,
    CorrelatedLoss,
    CrashGroup,
    LoadSpike,
    LossyLinks,
    OneWayPartition,
    Partition,
    RollingChurn,
    SlowReceivers,
)
from repro.scenarios.expectations import (
    ConvergenceWithin,
    NoDroppedSenders,
    RedundancyAtMost,
    ReliabilityAtLeast,
)
from repro.scenarios.spec import (
    FixedLinks,
    HeavyTailLinks,
    LanLinks,
    ScenarioSpec,
    SenderSpec,
    WanClusters,
)
from repro.sim.faults import CrashWindow
from repro.sim.network import BernoulliLoss
from repro.sim.rng import derive_seed

__all__ = [
    "FuzzCase",
    "FuzzOutcome",
    "FuzzReport",
    "ScenarioFuzzer",
    "run_fuzz",
]

# window-family keys for the no-overlap slot allocator; mirrors
# faults._EXCLUSIVE_FAMILIES (conditions of one family must not overlap,
# different families may — that composition is exactly what we fuzz)
_FAMILY = {
    CorrelatedLoss: "loss",
    LossyLinks: "link-loss",
    Partition: "partition",
    OneWayPartition: "oneway",
    BandwidthCap: "cap",
}


def _snap_restarts(spec: ScenarioSpec) -> ScenarioSpec:
    """Snap restart/join instants to the round grid of ``spec``.

    The columnar mega lane only re-admits nodes on tick boundaries, so
    mega-regime cases align their lifecycle re-entries with the gossip
    period; crash/leave times and window edges need no alignment. The
    shift is at most half a period — noise next to the rejoin delays the
    fuzzer draws — and keeps restarts strictly after their crashes.
    """
    period = spec.system.gossip_period

    def snap(t: float) -> float:
        return round(t / period) * period

    faults = dataclasses.replace(
        spec.faults,
        faults=[
            dataclasses.replace(f, restart_at=snap(f.restart_at))
            if isinstance(f, CrashWindow) and f.restart_at is not None
            else f
            for f in spec.faults.faults
        ],
    )
    churn = dataclasses.replace(
        spec.churn,
        events=[
            dataclasses.replace(e, time=snap(e.time)) if e.action == "join" else e
            for e in spec.churn.events
        ],
    )
    return dataclasses.replace(spec, faults=faults, churn=churn)


@dataclass(frozen=True)
class FuzzCase:
    """One generated scenario: the spec, its recipe, and its provenance."""

    index: int
    seed: int  # the fuzzer's root seed (not the spec's derived seed)
    spec: ScenarioSpec
    conditions: tuple = ()  # condition objects applied, in order
    loss_exposure: float = 0.0  # the injected-loss budget behind the floor

    @property
    def name(self) -> str:
        return self.spec.name

    def repro_command(self, driver: str = "sim", profile: Optional[str] = None) -> str:
        """A standalone shell command that re-runs exactly this case."""
        cmd = (
            "PYTHONPATH=src python -m repro.experiments fuzz-scenarios "
            f"--seed {self.seed} --only {self.index} --driver {driver}"
        )
        if profile:
            cmd += f" --profile {profile}"
        return cmd


class ScenarioFuzzer:
    """Generates valid random scenario compositions from a single seed.

    ``profile`` sets the scale frame (group size, horizon, load range);
    defaults to the smoke-shrunken active profile so a 200-case sweep
    stays tractable. Case ``i`` depends only on ``(seed, i)`` — never on
    the cases generated before it — so ``--only 17`` reproduces case 17
    without generating 0..16.
    """

    def __init__(self, seed: int, profile=None) -> None:
        from repro.experiments.profiles import get_profile
        from repro.scenarios.runner import smoke_profile

        self.seed = seed
        self.profile = profile if profile is not None else smoke_profile(get_profile())

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def case(self, index: int) -> FuzzCase:
        """Generate case ``index`` (deterministic in ``(seed, index)``)."""
        rng = Random(derive_seed(self.seed, "fuzz", index))
        prof = self.profile
        n_nodes = prof.n_nodes
        duration, warmup, drain = prof.duration, prof.warmup, prof.drain

        n_senders = rng.randint(1, max(1, min(prof.n_senders, n_nodes // 4)))
        stride = max(1, n_nodes // n_senders)
        total_load = prof.offered_load * rng.uniform(0.4, 1.0)
        arrivals = rng.choice(("periodic", "poisson", "onoff"))
        senders = tuple(
            SenderSpec(
                node=(i * stride) % n_nodes,
                rate=total_load / n_senders,
                arrivals=arrivals,
                on=duration * 0.15,
                off=duration * 0.1,
            )
            for i in range(n_senders)
        )
        # one case in four fuzzes the mega regime: baseline lpbcast on a
        # round-synchronous schedule over constant links — the shape the
        # columnar lane accelerates, so `--dispatch vector` sweeps get
        # genuine chaos-on-the-mega-lane coverage instead of 100% fallback
        mega = rng.random() < 0.25
        topology = (
            FixedLinks(0.01)
            if mega
            else rng.choice(
                (None, LanLinks(), FixedLinks(0.01), HeavyTailLinks(), WanClusters(2))
            )
        )
        baseline_p = rng.choice((0.0, 0.0, 0.0, 0.01, 0.05))
        buffer = rng.choice((20, 30, 45, 60))
        system = prof.system(buffer)
        if mega:
            system = dataclasses.replace(system, round_phase=0.0, round_jitter=0.0)

        conditions = self._draw_conditions(rng, duration, warmup, drain, total_load)
        base = ScenarioSpec(
            name=f"fuzz-{self.seed}-{index}",
            summary=("fuzzed mega " if mega else "fuzzed ")
            + "composition "
            + (" + ".join(type(c).__name__ for c in conditions) or "(no conditions)"),
            n_nodes=n_nodes,
            protocol="lpbcast" if mega else "adaptive",
            system=system,
            topology=topology,
            baseline_loss=BernoulliLoss(baseline_p) if baseline_p > 0 else None,
            senders=senders,
            duration=duration,
            warmup=warmup,
            drain=drain,
            seed=derive_seed(self.seed, "fuzz-spec", index) % 2**31,
        )
        spec = base.stressed(*conditions)
        if mega:
            spec = _snap_restarts(spec)
        spec, exposure = self._attach_properties(spec, conditions, baseline_p, mega)
        return FuzzCase(
            index=index,
            seed=self.seed,
            spec=spec,
            conditions=tuple(conditions),
            loss_exposure=exposure,
        )

    def cases(self, count: int, indices=None) -> list[FuzzCase]:
        """The first ``count`` cases, or exactly the given ``indices``."""
        if indices:
            return [self.case(i) for i in indices]
        return [self.case(i) for i in range(count)]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _draw_conditions(self, rng, duration, warmup, drain, total_load) -> list:
        """0..4 conditions with per-family non-overlapping windows."""
        occupied: dict[str, list[tuple[float, float]]] = {}

        def slot(family: str, max_frac: float = 0.3):
            """A window inside the run that overlaps nothing of ``family``."""
            for _ in range(8):
                length = duration * rng.uniform(0.1, max_frac)
                start = rng.uniform(duration * 0.15, duration * 0.85 - length)
                if all(
                    start >= t1 or start + length <= t0
                    for t0, t1 in occupied.get(family, ())
                ):
                    occupied.setdefault(family, []).append((start, start + length))
                    return start, length
            return None  # family too crowded: skip this condition

        conditions: list = []
        for _ in range(rng.randint(0, 4)):
            kind = rng.choice(
                (
                    CorrelatedLoss,
                    LossyLinks,
                    Partition,
                    OneWayPartition,
                    BandwidthCap,
                    CrashGroup,
                    RollingChurn,
                    BufferSqueeze,
                    LoadSpike,
                    SlowReceivers,
                )
            )
            family = _FAMILY.get(kind)
            window = slot(family) if family is not None else None
            if family is not None and window is None:
                continue
            # lifecycle conditions (crash-restart, churn-rejoin) both
            # resolve `fraction` to the highest-id non-senders, so two of
            # them respawn the same node twice — at most one per spec
            if kind in (CrashGroup, RollingChurn) and any(
                isinstance(c, (CrashGroup, RollingChurn)) for c in conditions
            ):
                continue
            if kind is CorrelatedLoss:
                conditions.append(
                    CorrelatedLoss(window[0], window[1], p=rng.uniform(0.2, 0.8))
                )
            elif kind is LossyLinks:
                conditions.append(
                    LossyLinks(
                        window[0],
                        window[1],
                        p=rng.uniform(0.3, 0.9),
                        fraction=rng.uniform(0.1, 0.3),
                    )
                )
            elif kind is Partition:
                conditions.append(
                    Partition(window[0], window[1], n_groups=rng.choice((2, 3)))
                )
            elif kind is OneWayPartition:
                conditions.append(
                    OneWayPartition(
                        window[0],
                        window[1],
                        n_groups=2,
                        blocked=rng.choice((((0, 1),), ((1, 0),))),
                    )
                )
            elif kind is BandwidthCap:
                conditions.append(
                    BandwidthCap(
                        window[0], window[1], rate=total_load * rng.uniform(1.5, 4.0)
                    )
                )
            elif kind is CrashGroup:
                t = rng.uniform(duration * 0.2, duration * 0.6)
                conditions.append(
                    CrashGroup(
                        time=t,
                        fraction=rng.uniform(0.1, 0.2),
                        restart_after=duration * rng.uniform(0.15, 0.3),
                    )
                )
            elif kind is RollingChurn:
                conditions.append(
                    RollingChurn(
                        start=duration * 0.2,
                        interval=duration * 0.1,
                        fraction=rng.uniform(0.1, 0.2),
                        rejoin_after=duration * 0.15,
                        action="leave",
                    )
                )
            elif kind is BufferSqueeze:
                if any(isinstance(c, BufferSqueeze) for c in conditions):
                    continue
                t = rng.uniform(duration * 0.2, duration * 0.5)
                capacity = rng.choice((8, 12, 16))
                conditions.append(
                    BufferSqueeze(
                        time=t,
                        capacity=capacity,
                        fraction=rng.uniform(0.1, 0.25),
                        restore_at=t + duration * 0.25,
                        restore_to=capacity * 2,
                    )
                )
            elif kind is LoadSpike:
                if any(isinstance(c, LoadSpike) for c in conditions):
                    continue
                t = rng.uniform(duration * 0.2, duration * 0.6)
                conditions.append(
                    LoadSpike(t, duration * rng.uniform(0.1, 0.25), factor=rng.uniform(1.5, 3.0))
                )
            else:  # SlowReceivers
                if any(isinstance(c, SlowReceivers) for c in conditions):
                    continue
                conditions.append(
                    SlowReceivers(
                        capacity=rng.choice((10, 14, 18)),
                        fraction=rng.uniform(0.1, 0.25),
                    )
                )
        return conditions

    def _attach_properties(
        self, spec, conditions, baseline_p, mega: bool = False
    ) -> tuple[ScenarioSpec, float]:
        """Property expectations from the injected adversity itself."""
        w0, w1 = spec.window
        measure = max(w1 - w0, 1e-9)

        def overlap(t, d) -> float:
            return max(0.0, min(t + d, w1) - max(t, w0)) / measure

        exposure = baseline_p
        for c in conditions:
            if isinstance(c, CorrelatedLoss):
                exposure += c.p * overlap(c.time, c.duration)
            elif isinstance(c, LossyLinks):
                # flaky nodes degrade ~2*fraction of directed links
                frac = c.fraction if c.fraction is not None else 0.2
                exposure += c.p * min(1.0, 2 * frac) * overlap(c.time, c.duration)
            elif isinstance(c, Partition):
                exposure += overlap(c.time, c.duration)
            elif isinstance(c, OneWayPartition):
                exposure += 0.7 * overlap(c.time, c.duration)
            elif isinstance(c, BandwidthCap):
                exposure += 0.3 * overlap(c.time, c.duration)
            elif isinstance(c, CrashGroup):
                exposure += c.fraction if c.fraction is not None else 0.15
            elif isinstance(c, (RollingChurn, BufferSqueeze, SlowReceivers)):
                exposure += 0.1
        # baseline lpbcast has no adaptive rate control to lean on: the
        # regime itself counts as exposure (~0.05 off the floor), and so
        # does offered load beyond what the buffer absorbs per round
        # (spikes included). Folding both into ``exposure`` — rather
        # than using a separate base floor — keeps the floor a pure
        # monotone function of the recorded exposure.
        if mega:
            exposure += 0.034
            peak = spec.offered_load
            for c in conditions:
                if isinstance(c, LoadSpike):
                    peak *= c.factor
            capacity = spec.system.buffer_capacity
            overload = max(0.0, peak * spec.system.gossip_period - capacity)
            exposure += 0.5 * overload / capacity
        floor = max(0.05, 0.9 - 1.5 * exposure)
        # lpbcast re-gossips every buffered event each round, so its
        # redundancy ceiling is the structural fanout x max_age bound
        # rather than the adaptive protocol's tuned ~20
        ceiling = (
            float(spec.system.fanout * spec.system.max_age) if mega else 20.0
        )
        expectations = [
            ReliabilityAtLeast(round(floor, 3), metric="avg_receiver_fraction"),
            RedundancyAtMost(ceiling),
        ]
        crashy = any(isinstance(f, CrashWindow) for f in spec.faults.faults)
        churny = len(spec.churn) > 0
        if not crashy and not churny:
            expectations.append(NoDroppedSenders())
        # convergence_rounds turns NaN (a *failure*, not a skip) when no
        # message completes; only promise it when nothing can stall or
        # shrink the group mid-flight
        cut = any(isinstance(c, (Partition, OneWayPartition)) for c in conditions)
        if not cut and not crashy and not churny:
            expectations.append(ConvergenceWithin(14.0))
        return spec.expecting(*expectations), exposure


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FuzzOutcome:
    """One case's verdict on one driver."""

    index: int
    name: str
    driver: str
    passed: bool
    summary: str = ""
    checks: tuple = ()  # ExpectationChecks (sim) or parity notes (threaded)
    repro: str = ""  # standalone command reproducing the failure ("" if passed)


@dataclass(frozen=True)
class FuzzReport:
    """A whole fuzz batch: seed, scale frame, and per-case outcomes."""

    seed: int
    count: int
    driver: str
    profile: str
    outcomes: tuple[FuzzOutcome, ...] = ()
    failing_indices: tuple[int, ...] = field(default=())

    @property
    def passed(self) -> bool:
        return not self.failing_indices


def _run_fuzz_sim(cases, profile, jobs, dispatch, horizon, flag) -> list[FuzzOutcome]:
    from repro.experiments.sweep import run_spec_checks

    checks = run_spec_checks(
        [case.spec for case in cases],
        profile_name=profile.name,
        jobs=jobs,
        dispatch=dispatch,
        horizon=horizon,
    )
    outcomes = []
    for case, check in zip(cases, checks):
        failures = check.failures
        outcomes.append(
            FuzzOutcome(
                index=case.index,
                name=case.name,
                driver="sim",
                passed=not failures,
                summary=case.spec.summary,
                checks=check.checks,
                repro="" if not failures else case.repro_command("sim", flag),
            )
        )
    return outcomes


def _run_fuzz_threaded(cases, profile, horizon, flag) -> list[FuzzOutcome]:
    from repro.scenarios.expectations import ScenarioResult, evaluate_expectations
    from repro.scenarios.runner import run_scenario_threaded

    outcomes = []
    for case in cases:
        spec = case.spec if horizon is None else case.spec.with_horizon(horizon)
        report = run_scenario_threaded(spec)
        result = ScenarioResult.from_threaded(report, profile=profile.name)
        checks = evaluate_expectations(spec.expectations, result)
        # expectation failures plus the parity property: everything the
        # spec declares must have lowered onto the runtime
        failed = any(not c.passed and not c.skipped for c in checks)
        parity_ok = report.skipped_count == 0
        outcomes.append(
            FuzzOutcome(
                index=case.index,
                name=case.name,
                driver="threaded",
                passed=(not failed) and parity_ok,
                summary=case.spec.summary
                + ("" if parity_ok else f" [PARITY: skipped={report.skipped}]"),
                checks=checks,
                repro=""
                if (not failed) and parity_ok
                else case.repro_command("threaded", flag),
            )
        )
    return outcomes


def run_fuzz(
    seed: int,
    count: int = 20,
    profile=None,
    driver: str = "sim",
    jobs: int = 1,
    dispatch: str = "batched",
    horizon: Optional[float] = None,
    indices=None,
) -> FuzzReport:
    """Generate and check a fuzz batch; see the module docstring.

    ``profile`` may be a base-profile *name* (``"quick"``, ``"paper"``
    — resolved and smoke-shrunk like the CLI does), an already-built
    :class:`Profile`, or None for the active profile's smoke frame.
    ``indices`` restricts the batch to specific case indices (the
    ``--only`` repro path). ``jobs`` shards the sim path through the
    sweep pool; the threaded path is wall-clock-paced and runs serially.
    """
    flag = None
    if isinstance(profile, str):
        from repro.experiments.profiles import get_profile
        from repro.scenarios.runner import smoke_profile

        flag = profile
        profile = smoke_profile(get_profile(profile))
    fuzzer = ScenarioFuzzer(seed, profile=profile)
    cases = fuzzer.cases(count, indices=indices)
    if driver == "sim":
        outcomes = _run_fuzz_sim(cases, fuzzer.profile, jobs, dispatch, horizon, flag)
    elif driver == "threaded":
        outcomes = _run_fuzz_threaded(cases, fuzzer.profile, horizon, flag)
    else:
        raise ValueError(f"unknown driver {driver!r}; choose 'sim' or 'threaded'")
    return FuzzReport(
        seed=seed,
        count=len(cases),
        driver=driver,
        profile=fuzzer.profile.name,
        outcomes=tuple(outcomes),
        failing_indices=tuple(o.index for o in outcomes if not o.passed),
    )
