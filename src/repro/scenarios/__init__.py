"""Declarative scenarios: one picklable spec per adverse condition.

The subsystem has four parts:

* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec`, the frozen value
  composing topology, fault/churn/resource schedules, workload shape and
  protocol profile;
* :mod:`repro.scenarios.conditions` — composable stress conditions that
  fold themselves into a spec (``spec.stressed(CorrelatedLoss(...))``);
* :mod:`repro.scenarios.registry` / :mod:`~repro.scenarios.library` —
  the ``@scenario("name")`` registry and the shipped named scenarios;
* :mod:`repro.scenarios.runner` — execution on either driver
  (simulator or threads), plus the sharded scenario matrix;
* :mod:`repro.scenarios.expectations` /
  :mod:`~repro.scenarios.baselines` — the regression layer: declarative
  per-scenario expectations (``ReliabilityAtLeast(0.95)``, ...)
  evaluated against a unified :class:`ScenarioResult`, and checked-in
  metric baselines diffed by ``check-scenarios`` in CI.

Quickstart::

    from repro.scenarios import get_scenario, run_scenario
    result = run_scenario("correlated-loss")           # simulator
    report = run_scenario("flash-crowd", driver="threaded")
"""

from repro.scenarios.conditions import (
    BandwidthCap,
    BufferSqueeze,
    CorrelatedLoss,
    CrashGroup,
    LoadSpike,
    LossyLinks,
    OneWayPartition,
    Partition,
    RollingChurn,
    SlowReceivers,
)
from repro.scenarios.expectations import (
    AdaptiveBeatsStatic,
    ConvergenceWithin,
    Expectation,
    ExpectationCheck,
    MetricValue,
    NoDroppedSenders,
    RedundancyAtMost,
    ReliabilityAtLeast,
    ScenarioCheck,
    ScenarioResult,
    evaluate_expectations,
)
from repro.scenarios.registry import (
    get_scenario,
    list_scenarios,
    scenario,
    scenario_names,
)
from repro.scenarios.spec import (
    FixedLinks,
    HeavyTailLinks,
    LanLinks,
    ScenarioSpec,
    SenderSpec,
    WanClusters,
)

__all__ = [
    "ScenarioSpec",
    "SenderSpec",
    "LanLinks",
    "WanClusters",
    "FixedLinks",
    "HeavyTailLinks",
    "CorrelatedLoss",
    "Partition",
    "OneWayPartition",
    "LossyLinks",
    "BandwidthCap",
    "CrashGroup",
    "RollingChurn",
    "BufferSqueeze",
    "LoadSpike",
    "SlowReceivers",
    "scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "run_scenario",
    "run_scenario_matrix",
    "run_scenario_threaded",
    "Expectation",
    "ExpectationCheck",
    "MetricValue",
    "ScenarioResult",
    "ScenarioCheck",
    "ReliabilityAtLeast",
    "RedundancyAtMost",
    "ConvergenceWithin",
    "NoDroppedSenders",
    "AdaptiveBeatsStatic",
    "evaluate_expectations",
]


def __getattr__(name):
    # runner pulls in the drivers and the experiments harness; load it
    # lazily so `import repro.scenarios` stays light for spec authors
    if name in ("run_scenario", "run_scenario_matrix", "run_scenario_threaded"):
        from repro.scenarios import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
