"""Drift bisection: shrink a failing scenario to its offending core.

A fuzzed (or hand-written) scenario fails with four conditions stacked;
which of them actually matters? :func:`bisect_spec` answers by *delta
debugging* (Zeller's ddmin): it decomposes the spec into independent
units, then searches for a 1-minimal failing subset — every unit left in
the answer is necessary (removing any single one makes the failure
disappear), so the report reads as a diagnosis, not a dump.

Units come in two granularities:

* **conditions** — when the caller knows the composition recipe (a
  :class:`~repro.scenarios.fuzz.FuzzCase` keeps its condition list),
  each condition object is one unit and subsets are rebuilt with
  ``stripped.stressed(*subset)``;
* **script items** — for an arbitrary spec, each fault window and
  resource change is a unit, and churn events are grouped *per node* (a
  ``leave`` and its ``join`` travel together — a rejoin without the
  departure would respawn a live node).

Any subset of a valid spec's units is itself valid: overlap validation
only ever *rejects* pairs, so removing windows cannot create a conflict.
That property is what lets ddmin probe subsets freely.

The predicate defaults to "any declared expectation fails on the sim
driver" (a run that raises also counts as failing — a crash is the
strongest kind of drift), but any ``spec -> bool`` callable works, which
is how the tests drive the algorithm synthetically and how a caller can
bisect against the threaded driver instead. For regressions *in time*
rather than in the spec, :func:`git_bisect_command` renders the
ready-to-paste ``git bisect run`` line for a failing fuzz case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.membership.churn import ChurnScript
from repro.scenarios.spec import ScenarioSpec
from repro.sim.faults import FaultScript
from repro.workload.dynamics import ResourceScript

__all__ = [
    "BisectUnit",
    "BisectResult",
    "spec_units",
    "strip_spec",
    "apply_units",
    "expectation_predicate",
    "bisect_spec",
    "git_bisect_command",
]


@dataclass(frozen=True)
class BisectUnit:
    """One independently removable piece of a scenario."""

    kind: str  # "condition" | "fault" | "churn" | "resource"
    label: str  # human-readable diagnosis line
    payload: Any = None  # condition object, window/change, or event tuple


@dataclass(frozen=True)
class BisectResult:
    """The minimal offending subset and how much work finding it took."""

    minimal: tuple[BisectUnit, ...]
    spec: ScenarioSpec  # the reduced spec (still failing, unless base_fails)
    tests: int  # predicate evaluations spent (cache misses only)
    base_fails: bool = False  # the spec fails with every unit removed

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(u.label for u in self.minimal)


def _clip(value: Any, width: int = 72) -> str:
    text = repr(value)
    return text if len(text) <= width else text[: width - 3] + "..."


# ----------------------------------------------------------------------
# decomposition / recomposition
# ----------------------------------------------------------------------
def spec_units(
    spec: ScenarioSpec, conditions: Optional[Sequence] = None
) -> list[BisectUnit]:
    """Decompose a spec into removable units (see the module docstring).

    Pass the original ``conditions`` list (e.g. ``FuzzCase.conditions``)
    to bisect at condition granularity; otherwise the spec's scripts are
    split item by item.
    """
    if conditions is not None:
        return [
            BisectUnit("condition", f"{type(c).__name__}: {_clip(c)}", c)
            for c in conditions
        ]
    units: list[BisectUnit] = []
    for window in spec.faults.faults:
        units.append(BisectUnit("fault", f"fault: {_clip(window)}", window))
    by_node: dict[Any, list] = {}
    for event in spec.churn.events:  # grouped per node, in script order
        by_node.setdefault(event.node, []).append(event)
    for node, events in by_node.items():
        label = "churn: node {} {}".format(
            node, "/".join(e.action for e in events)
        )
        units.append(BisectUnit("churn", label, tuple(events)))
    for change in spec.resources.changes:
        units.append(BisectUnit("resource", f"resource: {_clip(change)}", change))
    return units


def strip_spec(spec: ScenarioSpec) -> ScenarioSpec:
    """The spec with every fault/churn/resource unit removed."""
    return spec.replace(
        faults=FaultScript(), churn=ChurnScript(), resources=ResourceScript()
    )


def apply_units(spec: ScenarioSpec, units: Sequence[BisectUnit]) -> ScenarioSpec:
    """Rebuild the spec with exactly these units (original order kept)."""
    stripped = strip_spec(spec)
    faults = [u.payload for u in units if u.kind == "fault"]
    churn_events = [e for u in units if u.kind == "churn" for e in u.payload]
    changes = [u.payload for u in units if u.kind == "resource"]
    rebuilt = stripped.replace(
        faults=FaultScript(list(faults)),
        churn=ChurnScript(list(churn_events)),
        resources=ResourceScript(list(changes)),
    )
    conditions = [u.payload for u in units if u.kind == "condition"]
    if conditions:
        rebuilt = rebuilt.stressed(*conditions)
    return rebuilt


# ----------------------------------------------------------------------
# predicates
# ----------------------------------------------------------------------
def expectation_predicate(
    profile_name: str,
    dispatch: str = "batched",
    horizon: Optional[float] = None,
) -> Callable[[ScenarioSpec], bool]:
    """``spec -> True`` when any declared expectation fails on the sim
    driver (or the run itself raises — a crash is also a failure)."""

    def fails(spec: ScenarioSpec) -> bool:
        from repro.experiments.sweep import run_spec_checks

        try:
            check = run_spec_checks(
                [spec], profile_name=profile_name, dispatch=dispatch, horizon=horizon
            )[0]
        except Exception:
            return True
        return bool(check.failures)

    return fails


# ----------------------------------------------------------------------
# ddmin
# ----------------------------------------------------------------------
def _chunks(items: list, n: int) -> list[list]:
    size, rem = divmod(len(items), n)
    out, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < rem else 0)
        if end > start:
            out.append(items[start:end])
        start = end
    return out


def bisect_spec(
    spec: ScenarioSpec,
    failing: Callable[[ScenarioSpec], bool],
    conditions: Optional[Sequence] = None,
) -> BisectResult:
    """Reduce ``spec`` to a 1-minimal failing unit subset via ddmin.

    ``failing(spec) -> bool`` decides "does this composition still show
    the failure"; results are cached per subset so ddmin's revisits are
    free. Raises ``ValueError`` if the full spec does not fail (nothing
    to bisect). If the failure persists with *every* unit removed, the
    base spec itself is the culprit — returned as ``base_fails=True``
    with an empty subset.
    """
    units = spec_units(spec, conditions=conditions)
    index = {id(u): i for i, u in enumerate(units)}
    cache: dict[tuple[int, ...], bool] = {}
    tests = 0

    def fails(subset: list[BisectUnit]) -> bool:
        nonlocal tests
        key = tuple(sorted(index[id(u)] for u in subset))
        if key not in cache:
            tests += 1
            cache[key] = failing(apply_units(spec, subset))
        return cache[key]

    if not fails(units):
        raise ValueError(
            "the full spec does not fail under the predicate; nothing to bisect"
        )
    if fails([]):
        return BisectResult(
            minimal=(), spec=apply_units(spec, []), tests=tests, base_fails=True
        )

    n = 2
    while len(units) >= 2:
        chunks = _chunks(units, n)
        reduced = False
        for chunk in chunks:  # try each subset
            if fails(chunk):
                units, n = chunk, 2
                reduced = True
                break
        if not reduced and n > 2:  # try each complement
            for i in range(len(chunks)):
                complement = [u for j, c in enumerate(chunks) if j != i for u in c]
                if fails(complement):
                    units, n = complement, max(n - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if n >= len(units):
                break  # singleton granularity exhausted: 1-minimal
            n = min(len(units), n * 2)
    return BisectResult(
        minimal=tuple(units), spec=apply_units(spec, units), tests=tests
    )


# ----------------------------------------------------------------------
# bisecting over history instead of over the spec
# ----------------------------------------------------------------------
def git_bisect_command(repro: str, good: str = "<good-sha>", bad: str = "HEAD") -> str:
    """The ready-to-paste ``git bisect`` recipe for a failing fuzz case.

    Spec bisection answers *which condition* broke; git bisection answers
    *which commit*. The repro command a fuzz failure prints is already a
    deterministic exit-code oracle, so it slots straight into
    ``git bisect run``.
    """
    return (
        f"git bisect start {bad} {good} && git bisect run sh -c '{repro}' "
        "&& git bisect reset"
    )
