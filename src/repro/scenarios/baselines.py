"""Scenario metric baselines: capture, compare, report.

A baseline is a checked-in snapshot of one scenario's
:class:`~repro.scenarios.expectations.ScenarioResult` metrics, stored
under ``baselines/scenarios/<scenario>.json``. Each file keys its
entries by ``profile/driver`` (one scenario may have snapshots at smoke
scale, quick scale, on either driver), so a comparison always matches
like against like and a paper-scale run can never be judged against a
smoke baseline.

Comparison policy follows the drivers' guarantees:

* **sim** — byte-identical determinism (PR 1/PR 3) makes *exact*
  comparison correct: any difference, however small, is a behaviour
  change someone must either explain or bless with
  ``check-scenarios --update-baselines``.
* **threaded** — wall-clock pacing makes counts wobble run to run, so
  threaded entries compare inside a tolerance band shaped by each
  metric's declared :attr:`~repro.scenarios.expectations.MetricValue.kind`:
  counts get a relative band plus a small absolute slack (near-zero
  wobble), fractions get an absolute band (a relative band on [0, 1]
  would be vacuous), ratios get the plain relative band.

Float snapshots go through JSON as ``repr``-round-trip doubles, so an
exact sim comparison survives the file round trip bit for bit; NaN is
stored as ``null`` and compares equal to itself.

The CLI surface is ``python -m repro.experiments check-scenarios``; CI
runs it over the whole registry and fails on violated expectations or
unexplained drift.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.scenarios.expectations import ExpectationCheck, ScenarioResult

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_BASELINE_DIR",
    "THREADED_TOLERANCE",
    "baseline_key",
    "baseline_path",
    "load_baseline",
    "update_baseline",
    "MetricDrift",
    "BaselineDiff",
    "compare_to_baseline",
    "render_report",
]

SCHEMA_VERSION = 1

#: Home of the checked-in snapshots, anchored to the repo root (three
#: levels above this module in the src layout) so check-scenarios finds
#: them from any working directory; installed-package users point
#: ``--baseline-dir`` somewhere writable instead.
DEFAULT_BASELINE_DIR = (
    Path(__file__).resolve().parents[3] / "baselines" / "scenarios"
)

#: Relative band for threaded comparisons (sim compares exactly).
THREADED_TOLERANCE = 0.5

#: Absolute slack so near-zero threaded counts don't flap.
THREADED_ABSOLUTE_SLACK = 5.0


def baseline_key(result: ScenarioResult, horizon: Optional[float] = None) -> str:
    """The entry key a result snapshots under: ``profile/driver`` (plus
    the horizon override when one was applied — a shrunk run is a
    different population than the full one)."""
    key = f"{result.profile or 'default'}/{result.driver}"
    if horizon is not None:
        key += f"@{horizon:g}"
    return key


def baseline_path(scenario: str, root: Optional[Path] = None) -> Path:
    return Path(root if root is not None else DEFAULT_BASELINE_DIR) / f"{scenario}.json"


def _snap(value: float) -> Optional[float]:
    # JSON has no NaN/inf; store null and treat null == null on compare
    return None if not math.isfinite(value) else value


def load_baseline(scenario: str, root: Optional[Path] = None) -> Optional[dict]:
    """The scenario's baseline document, or None if never captured."""
    path = baseline_path(scenario, root)
    if not path.exists():
        return None
    doc = json.loads(path.read_text(encoding="utf-8"))
    if doc.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"baseline {path} has schema {doc.get('schema')!r}, "
            f"expected {SCHEMA_VERSION} — re-capture with --update-baselines"
        )
    return doc


def update_baseline(
    result: ScenarioResult,
    root: Optional[Path] = None,
    horizon: Optional[float] = None,
    dispatch: str = "batched",
) -> tuple[Path, bool]:
    """Record ``result`` as the baseline for its ``profile/driver`` entry.

    Other entries in the scenario's file are preserved. Returns the path
    and whether anything changed on disk (deterministic serialisation:
    an identical re-capture is a no-op, so ``--update-baselines`` twice
    in a row leaves a clean git tree).
    """
    path = baseline_path(result.scenario, root)
    try:
        doc = load_baseline(result.scenario, root)
    except ValueError:
        # stale/foreign schema: --update-baselines is the documented
        # remedy, so re-capturing must start fresh rather than re-raise
        doc = None
    doc = doc or {
        "schema": SCHEMA_VERSION,
        "scenario": result.scenario,
        "entries": {},
    }
    entry = {
        "driver": result.driver,
        "profile": result.profile,
        "n_nodes": result.n_nodes,
        "captured": {"dispatch": dispatch, "horizon": horizon},
        "metrics": {
            name: {
                "value": _snap(metric.value),
                "source": metric.source,
                "kind": metric.kind,
            }
            for name, metric in sorted(result.metrics.items())
        },
    }
    key = baseline_key(result, horizon)
    changed = doc["entries"].get(key) != entry
    if changed:
        doc["entries"][key] = entry
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    return path, changed


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class MetricDrift:
    """One metric that moved away from its baseline."""

    metric: str
    baseline: Optional[float]  # None = NaN (recorded as null)
    current: Optional[float]
    source: str = ""
    # "" = value drift; "baseline"/"current" = the metric is absent on
    # that side entirely (a schema change, not a NaN measurement)
    missing_side: str = ""

    def describe(self) -> str:
        def show(v):
            return "NaN" if v is None else f"{v:.6g}"

        if self.missing_side == "baseline":
            return (
                f"{self.metric}: not in baseline -> current "
                f"{show(self.current)} (new metric; re-capture to bless it)"
            )
        if self.missing_side == "current":
            return (
                f"{self.metric}: baseline {show(self.baseline)} -> "
                "absent from current run"
            )
        if self.baseline is not None and self.current is not None:
            delta = self.current - self.baseline
            return (
                f"{self.metric}: baseline {show(self.baseline)} -> current "
                f"{show(self.current)} (delta {delta:+.6g})"
            )
        return f"{self.metric}: baseline {show(self.baseline)} -> current {show(self.current)}"


@dataclass(frozen=True, slots=True)
class BaselineDiff:
    """How one result compares to its recorded baseline entry."""

    scenario: str
    key: str
    missing: bool = False  # no baseline entry recorded for this key
    drifts: tuple[MetricDrift, ...] = ()
    tolerance: float = 0.0
    compared: int = 0  # metrics compared
    error: str = ""  # unreadable/stale baseline file (counts as missing)

    @property
    def clean(self) -> bool:
        return not self.missing and not self.drifts

    def describe(self) -> str:
        if self.error:
            return f"UNREADABLE baseline: {self.error}"
        if self.missing:
            return (
                f"no baseline recorded under {self.key!r} — "
                "capture one with check-scenarios --update-baselines"
            )
        if not self.drifts:
            mode = "exact" if self.tolerance == 0.0 else f"±{self.tolerance:.0%}"
            return f"clean ({self.compared} metrics, {mode})"
        return f"DRIFT in {len(self.drifts)} of {self.compared} metrics"


def _within(
    baseline: Optional[float],
    current: Optional[float],
    tolerance: float,
    slack: float,
    kind: str,
) -> bool:
    if baseline is None or current is None:
        return baseline is None and current is None  # NaN == NaN
    # JSON may hand back ints (hand-edited snapshots); compare as floats
    baseline, current = float(baseline), float(current)
    if tolerance == 0.0:
        return baseline == current
    diff = abs(current - baseline)
    if kind == "fraction":
        # bounded [0, 1]: an absolute band of half the relative
        # tolerance — a relative band would be vacuous here, and the
        # count slack would hide a total collapse (1.0 -> 0.0)
        return diff <= tolerance / 2
    band = tolerance * max(abs(baseline), abs(current))
    if kind == "count":
        # the absolute slack keeps near-zero counts (delivered_min
        # 0 vs 3) from flapping; ratios get no slack — a 1.5 -> 4.9
        # redundancy regression must not hide inside it
        band = max(band, slack)
    return diff <= band


def compare_to_baseline(
    result: ScenarioResult,
    root: Optional[Path] = None,
    horizon: Optional[float] = None,
    tolerance: Optional[float] = None,
) -> BaselineDiff:
    """Diff ``result`` against its recorded entry.

    ``tolerance`` defaults by driver: 0 (exact) for sim,
    :data:`THREADED_TOLERANCE` for threaded. A missing file or entry is
    reported as ``missing`` — the caller decides whether that fails the
    run (CI does) or prompts a capture.
    """
    if tolerance is None:
        tolerance = 0.0 if result.driver == "sim" else THREADED_TOLERANCE
    slack = 0.0 if tolerance == 0.0 else THREADED_ABSOLUTE_SLACK
    key = baseline_key(result, horizon)
    try:
        doc = load_baseline(result.scenario, root)
    except ValueError as exc:
        # a stale-schema file must fail the gate *with the readable
        # report* (CI uploads it), not kill the run with a traceback
        return BaselineDiff(
            scenario=result.scenario, key=key, missing=True, error=str(exc)
        )
    entry = None if doc is None else doc["entries"].get(key)
    if entry is None:
        return BaselineDiff(scenario=result.scenario, key=key, missing=True)
    recorded = entry["metrics"]
    drifts = []
    names = sorted(set(recorded) | set(result.metrics))
    for name in names:
        base = recorded.get(name, {}).get("value") if name in recorded else None
        cur = _snap(result.metrics[name].value) if name in result.metrics else None
        if name not in recorded or name not in result.metrics:
            # a metric appearing or disappearing is drift by definition
            drifts.append(
                MetricDrift(
                    metric=name,
                    baseline=base,
                    current=cur,
                    source=result.source(name)
                    or recorded.get(name, {}).get("source", ""),
                    missing_side="baseline" if name not in recorded else "current",
                )
            )
            continue
        # the current run's kind is authoritative (older snapshots may
        # predate kind metadata)
        kind = result.metrics[name].kind
        if not _within(base, cur, tolerance, slack, kind):
            drifts.append(
                MetricDrift(
                    metric=name, baseline=base, current=cur,
                    source=result.metrics[name].source,
                )
            )
    return BaselineDiff(
        scenario=result.scenario,
        key=key,
        drifts=tuple(drifts),
        tolerance=tolerance,
        compared=len(names),
    )


# ----------------------------------------------------------------------
# the human-readable report
# ----------------------------------------------------------------------
def render_report(
    title: str,
    rows: Sequence[tuple[str, Sequence[ExpectationCheck], Optional[BaselineDiff]]],
) -> str:
    """One readable report block per scenario: expectation verdicts first,
    then the baseline comparison with per-metric drift lines."""
    lines = [title, "=" * len(title), ""]
    failed = skipped = passed = 0
    drifted = missing = clean = 0
    for scenario, checks, diff in rows:
        lines.append(scenario)
        for check in checks:
            lines.append(f"  {check.verdict:4s} {check.expectation}: {check.detail}")
            if check.skipped:
                skipped += 1
            elif check.passed:
                passed += 1
            else:
                failed += 1
        if not checks:
            lines.append("  (no expectations attached)")
        if diff is not None:
            lines.append(f"  baseline {diff.key}: {diff.describe()}")
            for drift in diff.drifts:
                lines.append(f"    {drift.describe()}")
            if diff.missing:
                missing += 1
            elif diff.drifts:
                drifted += 1
            else:
                clean += 1
        lines.append("")
    lines.append(
        f"summary: {len(rows)} scenario(s); expectations {passed} pass, "
        f"{failed} fail, {skipped} skipped; baselines {clean} clean, "
        f"{drifted} drifted, {missing} missing"
    )
    return "\n".join(lines)
