"""Run scenarios on either driver.

The simulator path lowers a :class:`~repro.scenarios.spec.ScenarioSpec`
to a :class:`~repro.experiments.harness.RunSpec` and reuses the whole
experiment harness (so scenario runs sweep, shard and serialise exactly
like figure runs). The threaded path drives the same spec on real
threads: workload offers are paced from the spec's sender shapes, timed
capacity changes are queued onto the owning node threads, and the
conditions only a simulator can impose (loss models, partitions, churn,
topologies) are *reported as skipped* rather than silently dropped —
the threaded driver exists to validate the simulator, not to replace it.

Virtual-to-wall time mapping: threaded runs use a short gossip period
(default 0.1 s vs the spec's 1 s), so one spec second maps to
``gossip_period / spec.system.gossip_period`` wall seconds and offer
intervals shrink by the same factor — the load:capacity regime of the
scenario is preserved, only the clock changes.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from random import Random
from typing import Optional, Union

from repro.experiments.harness import run_once, spec_for_scenario
from repro.experiments.profiles import Profile, get_profile
from repro.experiments.sweep import run_scenario_matrix
from repro.runtime.cluster import ThreadedCluster
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.workload.dynamics import CapacityChange

__all__ = [
    "ThreadedScenarioReport",
    "smoke_profile",
    "run_scenario",
    "run_scenario_threaded",
    "run_scenario_matrix",
]


def smoke_profile(profile: Optional[Profile] = None) -> Profile:
    """A shrunken copy of ``profile`` for smoke runs (CLI ``--quick``,
    CI, and the scenario-matrix determinism tests): small group, short
    horizon, light load — every scenario's schedule still fires, because
    builders place events at fractions of the profile duration."""
    base = profile if profile is not None else get_profile()
    return dataclasses.replace(
        base,
        name=f"{base.name}-smoke",
        n_nodes=min(16, base.n_nodes),
        n_senders=min(3, base.n_senders),
        duration=36.0,
        warmup=12.0,
        drain=6.0,
        offered_load=min(30.0, base.offered_load),
    )


# ----------------------------------------------------------------------
# simulator path
# ----------------------------------------------------------------------
def _resolve(spec_or_name: Union[str, ScenarioSpec], profile: Optional[Profile]) -> ScenarioSpec:
    if isinstance(spec_or_name, ScenarioSpec):
        return spec_or_name
    return get_scenario(spec_or_name, profile)


def run_scenario(
    spec_or_name: Union[str, ScenarioSpec],
    driver: str = "sim",
    profile: Optional[Profile] = None,
    dispatch: str = "batched",
    horizon: Optional[float] = None,
):
    """Run one scenario end to end on the chosen driver.

    Returns a :class:`~repro.experiments.harness.RunResult` for
    ``driver="sim"`` and a :class:`ThreadedScenarioReport` for
    ``driver="threaded"``.
    """
    spec = _resolve(spec_or_name, profile)
    if driver == "sim":
        return run_once(spec_for_scenario(spec, dispatch=dispatch, horizon=horizon))
    if driver == "threaded":
        if horizon is not None:
            spec = spec.with_horizon(horizon)
        return run_scenario_threaded(spec)
    raise ValueError(f"unknown driver {driver!r}; choose 'sim' or 'threaded'")


# ----------------------------------------------------------------------
# threaded path
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ThreadedScenarioReport:
    """What a threaded scenario run did and what it could not model."""

    scenario: str
    n_nodes: int
    wall_seconds: float
    time_scale: float  # wall seconds per spec second
    offers: int
    admitted: int
    delivered_total: int
    delivered_min: int
    delivered_max: int
    skipped: tuple[str, ...]  # sim-only conditions this driver cannot impose
    # surfaced as a count so CLI output and JSON payloads can report
    # partial coverage without string-matching the skip reasons; a real
    # field (so it serialises) but always derived — see __post_init__
    skipped_count: int = 0
    duplicates_seen: int = 0  # gossip-level duplicate summaries, all nodes

    def __post_init__(self) -> None:
        object.__setattr__(self, "skipped_count", len(self.skipped))


class _Feeder:
    """Paces one sender's offers in scaled wall time."""

    def __init__(self, sender, scale: float, seed: int) -> None:
        self.node = sender.node
        self.arrivals = sender.build_arrivals()
        # sender nodes are ints by ScenarioSpec validation
        self.rng = Random(seed * 1_000_003 + sender.node)
        self.scale = scale
        self.stop = None if sender.stop is None else sender.stop * scale
        self.next = sender.start * scale + self.arrivals.next_interval(self.rng) * scale

    def due(self, now: float) -> bool:
        if self.stop is not None and self.next >= self.stop:
            return False
        return self.next <= now

    def advance(self) -> None:
        self.next += self.arrivals.next_interval(self.rng) * self.scale


def _skipped_conditions(spec: ScenarioSpec) -> tuple[str, ...]:
    skipped = []
    if len(spec.faults):
        skipped.append(f"{len(spec.faults)} fault window(s): sim-only")
    if len(spec.churn):
        skipped.append(f"{len(spec.churn)} churn event(s): sim-only")
    if spec.topology is not None:
        skipped.append("topology/latency model: transport has real timing")
    if spec.baseline_loss is not None:
        skipped.append("baseline loss model: transport has real loss")
    if spec.membership == "partial":
        skipped.append("partial membership: threaded group runs the full directory")
    return tuple(skipped)


def run_scenario_threaded(
    spec: ScenarioSpec,
    wall_seconds: Optional[float] = None,
    gossip_period: float = 0.1,
    transport: str = "memory",
) -> ThreadedScenarioReport:
    """Drive a scenario on :class:`~repro.runtime.cluster.ThreadedCluster`.

    ``wall_seconds`` bounds the run (default: the whole scenario at the
    scaled clock). The feeder loop runs on the calling thread: it paces
    offers through each sender node's admission queue and applies timed
    capacity changes via the nodes' command queues at their scaled
    offsets.
    """
    scale = gossip_period / spec.system.gossip_period
    wall = spec.duration * scale if wall_seconds is None else wall_seconds
    cluster = ThreadedCluster.from_scenario(
        spec, gossip_period=gossip_period, transport=transport
    )
    skipped = _skipped_conditions(spec)

    # timed resource actions at scaled offsets (t=0 capacity overrides
    # were already applied by from_scenario, before any thread starts)
    actions = [
        (change.time * scale, change)
        for change in sorted(spec.resources.changes, key=lambda c: c.time)
        if not (change.time == 0.0 and isinstance(change, CapacityChange))
    ]
    feeders = [_Feeder(sender, scale, spec.seed) for sender in spec.senders]
    offers = 0
    next_action = 0

    cluster.start()
    t0 = time.monotonic()
    try:
        while True:
            now = time.monotonic() - t0
            if now >= wall:
                break
            while next_action < len(actions) and actions[next_action][0] <= now:
                _, change = actions[next_action]
                next_action += 1
                if isinstance(change, CapacityChange):
                    for node in change.nodes:
                        if node in cluster.nodes:
                            cluster.set_capacity(node, change.capacity)
                else:  # OfferedRateChange — repace the affected feeders
                    for feeder in feeders:
                        if feeder.node in change.nodes:
                            feeder.arrivals.rate = change.rate
            wake = t0 + now + 0.02
            for feeder in feeders:
                while feeder.due(now):
                    cluster.broadcast(feeder.node)
                    offers += 1
                    feeder.advance()
                if feeder.stop is None or feeder.next < feeder.stop:
                    wake = min(wake, t0 + feeder.next)
            if next_action < len(actions):
                wake = min(wake, t0 + actions[next_action][0])
            pause = wake - time.monotonic()
            if pause > 0:
                time.sleep(min(pause, 0.02))
    finally:
        cluster.stop()

    # threads are joined: protocol state is safe to read now
    delivered = [
        cluster.protocol_of(node).stats.events_delivered for node in range(spec.n_nodes)
    ]
    duplicates = sum(
        getattr(cluster.protocol_of(node).stats, "duplicates_seen", 0)
        for node in range(spec.n_nodes)
    )
    admitted = sum(node.offers_admitted for node in cluster.nodes.values())
    return ThreadedScenarioReport(
        scenario=spec.name,
        n_nodes=spec.n_nodes,
        wall_seconds=wall,
        time_scale=scale,
        offers=offers,
        admitted=admitted,
        delivered_total=sum(delivered),
        delivered_min=min(delivered),
        delivered_max=max(delivered),
        skipped=skipped,
        duplicates_seen=duplicates,
    )
