"""Run scenarios on either driver.

The simulator path lowers a :class:`~repro.scenarios.spec.ScenarioSpec`
to a :class:`~repro.experiments.harness.RunSpec` and reuses the whole
experiment harness (so scenario runs sweep, shard and serialise exactly
like figure runs). The threaded path drives the same spec on real
threads with *full condition parity*: workload offers are paced from
the spec's sender shapes, timed capacity changes are queued onto the
owning node threads, loss/partition/bandwidth windows and the
topology/latency environment are injected through the
:class:`~repro.runtime.transport.ChaosTransport` layer, crash windows
stop and restart real node threads, churn scripts join and leave
members through the live membership layer, and partial views gossip
over the actual wire. Conditions the threaded driver cannot lower
(unknown fault kinds) are still *reported as skipped* rather than
silently dropped; :func:`threaded_coverage` computes the injected/
skipped split without running anything, so the CLI and the parity tests
can audit coverage cheaply.

The process path pushes the same parity one deployment shape further:
:func:`run_scenario_process` drives the spec on
:class:`~repro.runtime.process_cluster.ProcessCluster` — shard worker
*processes* gossiping over real UDP sockets — with the identical
lowering vocabulary (chaos rules at the socket layer, crash/churn as
real worker-side node stops/restarts, feeders paced inside the owning
worker) and the same injected/skipped audit via
:func:`process_coverage`.

Virtual-to-wall time mapping: threaded and process runs use a short
gossip period (default 0.1 s vs the spec's 1 s), so one spec second
maps to ``gossip_period / spec.system.gossip_period`` wall seconds;
offer intervals, fault/churn offsets and link latencies shrink by the
same factor and bandwidth caps grow by its inverse — the load:capacity
regime of the scenario is preserved, only the clock changes.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from random import Random
from typing import Optional, Union

from repro.experiments.harness import run_once, spec_for_scenario
from repro.experiments.profiles import Profile, get_profile
from repro.experiments.sweep import run_scenario_matrix
from repro.runtime.cluster import ThreadedCluster
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.sim.faults import (
    AsymmetricPartitionWindow,
    BandwidthCapWindow,
    CrashWindow,
    LinkLossWindow,
    LossWindow,
    PartitionWindow,
)
from repro.sim.network import BernoulliLoss
from repro.workload.dynamics import CapacityChange

__all__ = [
    "ProcessScenarioReport",
    "ThreadedScenarioReport",
    "smoke_profile",
    "run_scenario",
    "run_scenario_process",
    "run_scenario_threaded",
    "run_scenario_matrix",
    "process_coverage",
    "threaded_coverage",
]


def smoke_profile(profile: Optional[Profile] = None) -> Profile:
    """A shrunken copy of ``profile`` for smoke runs (CLI ``--quick``,
    CI, and the scenario-matrix determinism tests): small group, short
    horizon, light load — every scenario's schedule still fires, because
    builders place events at fractions of the profile duration."""
    base = profile if profile is not None else get_profile()
    return dataclasses.replace(
        base,
        name=f"{base.name}-smoke",
        n_nodes=min(16, base.n_nodes),
        n_senders=min(3, base.n_senders),
        duration=36.0,
        warmup=12.0,
        drain=6.0,
        offered_load=min(30.0, base.offered_load),
    )


# ----------------------------------------------------------------------
# simulator path
# ----------------------------------------------------------------------
def _resolve(spec_or_name: Union[str, ScenarioSpec], profile: Optional[Profile]) -> ScenarioSpec:
    if isinstance(spec_or_name, ScenarioSpec):
        return spec_or_name
    return get_scenario(spec_or_name, profile)


def run_scenario(
    spec_or_name: Union[str, ScenarioSpec],
    driver: str = "sim",
    profile: Optional[Profile] = None,
    dispatch: str = "batched",
    horizon: Optional[float] = None,
):
    """Run one scenario end to end on the chosen driver.

    Returns a :class:`~repro.experiments.harness.RunResult` for
    ``driver="sim"``, a :class:`ThreadedScenarioReport` for
    ``driver="threaded"`` and a :class:`ProcessScenarioReport` for
    ``driver="process"``.
    """
    spec = _resolve(spec_or_name, profile)
    if driver == "sim":
        return run_once(spec_for_scenario(spec, dispatch=dispatch, horizon=horizon))
    if driver == "threaded":
        if horizon is not None:
            spec = spec.with_horizon(horizon)
        return run_scenario_threaded(spec)
    if driver == "process":
        if horizon is not None:
            spec = spec.with_horizon(horizon)
        return run_scenario_process(spec)
    raise ValueError(
        f"unknown driver {driver!r}; choose 'sim', 'threaded' or 'process'"
    )


# ----------------------------------------------------------------------
# threaded path
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ThreadedScenarioReport:
    """What a threaded scenario run did, injected, and could not model."""

    scenario: str
    n_nodes: int
    wall_seconds: float
    time_scale: float  # wall seconds per spec second
    offers: int
    admitted: int
    delivered_total: int
    delivered_min: int
    delivered_max: int
    skipped: tuple[str, ...]  # conditions this driver could not lower
    # surfaced as a count so CLI output and JSON payloads can report
    # partial coverage without string-matching the skip reasons; a real
    # field (so it serialises) but always derived — see __post_init__
    skipped_count: int = 0
    duplicates_seen: int = 0  # gossip-level duplicate summaries, all nodes
    injected: tuple[str, ...] = ()  # conditions lowered onto the runtime
    injected_count: int = 0  # derived, like skipped_count
    chaos_eaten: int = 0  # datagrams the chaos layer dropped/capped/blocked
    chaos_delayed: int = 0  # datagrams forwarded late through the delay line
    chaos_oneway_dropped: int = 0  # datagrams eaten by a one-way (directed) cut

    def __post_init__(self) -> None:
        object.__setattr__(self, "skipped_count", len(self.skipped))
        object.__setattr__(self, "injected_count", len(self.injected))


class _Feeder:
    """Paces one sender's offers in scaled wall time."""

    def __init__(self, sender, scale: float, seed: int) -> None:
        self.node = sender.node
        self.arrivals = sender.build_arrivals()
        # sender nodes are ints by ScenarioSpec validation
        self.rng = Random(seed * 1_000_003 + sender.node)
        self.scale = scale
        self.stop = None if sender.stop is None else sender.stop * scale
        self.next = sender.start * scale + self.arrivals.next_interval(self.rng) * scale

    def due(self, now: float) -> bool:
        if self.stop is not None and self.next >= self.stop:
            return False
        return self.next <= now

    def advance(self) -> None:
        self.next += self.arrivals.next_interval(self.rng) * self.scale


_KNOWN_FAULTS = (
    LossWindow,
    LinkLossWindow,
    PartitionWindow,
    AsymmetricPartitionWindow,
    BandwidthCapWindow,
    CrashWindow,
)


# condition -> how each live driver lowers it; the key set is the shared
# classification, only the wording after ": " differs. Keeping the
# condition labels ("loss window", "crash window", ...) identical across
# drivers lets the parity tests match markers without caring which
# runtime produced the report.
_THREADED_LOWERING = {
    "chaos": "chaos transport",
    "crash": "real node stop/restart",
    "unknown": "no threaded lowering",
    "churn": "live join/leave",
    "topology": "chaos link delays",
    "partial": "live partial views on the wire",
}
_PROCESS_LOWERING = {
    "chaos": "socket-layer chaos rules",
    "crash": "real worker-side node stop/restart",
    "unknown": "no process lowering",
    "churn": "live join/leave across workers",
    "topology": "socket-layer chaos delays",
    "partial": "live partial views over UDP",
}


def _condition_coverage(
    spec: ScenarioSpec, lowering: dict
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    injected: list[str] = []
    skipped: list[str] = []

    def count(kind) -> int:
        return sum(1 for f in spec.faults.faults if isinstance(f, kind))

    losses, partitions = count(LossWindow), count(PartitionWindow)
    caps, crashes = count(BandwidthCapWindow), count(CrashWindow)
    oneways, link_losses = count(AsymmetricPartitionWindow), count(LinkLossWindow)
    chaos, crash = lowering["chaos"], lowering["crash"]
    if losses:
        injected.append(f"{losses} loss window(s): {chaos}")
    if link_losses:
        injected.append(f"{link_losses} per-link loss window(s): {chaos}")
    if partitions:
        injected.append(f"{partitions} partition window(s): {chaos}")
    if oneways:
        injected.append(f"{oneways} one-way partition window(s): {chaos}")
    if caps:
        injected.append(f"{caps} bandwidth cap window(s): {chaos}")
    if crashes:
        injected.append(f"{crashes} crash window(s): {crash}")
    unknown = sum(1 for f in spec.faults.faults if not isinstance(f, _KNOWN_FAULTS))
    if unknown:
        skipped.append(
            f"{unknown} unrecognised fault window(s): {lowering['unknown']}"
        )
    if len(spec.churn):
        injected.append(f"{len(spec.churn)} churn event(s): {lowering['churn']}")
    if spec.topology is not None:
        injected.append(f"topology/latency model: {lowering['topology']}")
    if spec.baseline_loss is not None:
        injected.append(f"baseline loss model: {chaos}")
    if spec.membership == "partial":
        injected.append(f"partial membership: {lowering['partial']}")
    return tuple(injected), tuple(skipped)


def threaded_coverage(spec: ScenarioSpec) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """The ``(injected, skipped)`` condition split for the threaded driver.

    Pure classification — no cluster is built, so the CLI's coverage
    listing and the registry-wide parity test can audit every scenario
    in microseconds. ``run_scenario_threaded`` derives its report's
    ``injected``/``skipped`` tuples from this same function, so the
    audit can never drift from what a run actually does.
    """
    return _condition_coverage(spec, _THREADED_LOWERING)


def process_coverage(spec: ScenarioSpec) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """The ``(injected, skipped)`` condition split for the process driver.

    Same pure classification as :func:`threaded_coverage` — the process
    workers lower the identical condition vocabulary (chaos rules sit at
    the UDP socket layer instead of the in-memory transport; crash and
    churn stop/restart real asyncio nodes inside the owning worker), so
    the condition labels match and only the lowering wording differs.
    """
    return _condition_coverage(spec, _PROCESS_LOWERING)


def _threaded_actions(spec: ScenarioSpec, cluster, scale: float, feeders) -> list:
    """Lower every timed condition onto ``(wall_time, seq, thunk)`` triples.

    The complement of the t=0 work ``ThreadedCluster.from_scenario``
    already did (t=0 capacity overrides, baseline loss/latency on the
    chaos rules): resource changes go through the node command queues,
    loss/partition/bandwidth windows mutate the shared chaos rule set,
    crash windows and churn events stop/start real node threads.
    """
    actions: list[tuple[float, int, object]] = []

    def add(spec_time: float, thunk) -> None:
        actions.append((spec_time * scale, len(actions), thunk))

    for change in spec.resources.changes:
        if change.time == 0.0 and isinstance(change, CapacityChange):
            continue  # applied pre-start by from_scenario
        if isinstance(change, CapacityChange):

            def apply_capacity(c=change):
                for node in c.nodes:
                    if node in cluster.nodes:
                        cluster.set_capacity(node, c.capacity)

            add(change.time, apply_capacity)
        else:  # OfferedRateChange — repace the affected feeders

            def repace(c=change):
                for feeder in feeders:
                    if feeder.node in c.nodes:
                        feeder.arrivals.rate = c.rate

            add(change.time, repace)

    chaos = cluster.chaos
    baseline = spec.baseline_loss
    for fault in spec.faults.faults:
        if isinstance(fault, LossWindow):
            add(fault.time, lambda f=fault: chaos.set_loss(BernoulliLoss(f.p)))
            add(fault.time + fault.duration, lambda: chaos.set_loss(baseline))
        elif isinstance(fault, LinkLossWindow):
            add(fault.time, lambda f=fault: chaos.set_link_loss(f.matrix))
            add(fault.time + fault.duration, lambda: chaos.set_link_loss(None))
        elif isinstance(fault, PartitionWindow):
            add(
                fault.time,
                lambda f=fault: chaos.partition([list(g) for g in f.groups]),
            )
            add(fault.time + fault.duration, chaos.heal)
        elif isinstance(fault, AsymmetricPartitionWindow):
            add(
                fault.time,
                lambda f=fault: chaos.partition_oneway(
                    [list(g) for g in f.groups], f.blocked
                ),
            )
            add(fault.time + fault.duration, chaos.heal_oneway)
        elif isinstance(fault, BandwidthCapWindow):
            # the chaos cap clock ticks in spec seconds (bound by
            # from_scenario), so the spec's msg-per-spec-second rate
            # applies unchanged — same per-second budget granularity as
            # the simulator's network, not just the same average
            add(fault.time, lambda f=fault: chaos.set_bandwidth_cap(f.rate))
            add(fault.time + fault.duration, lambda: chaos.set_bandwidth_cap(None))
        elif isinstance(fault, CrashWindow):

            def crash(f=fault):
                for node in f.nodes:
                    cluster.crash_node(node)

            add(fault.time, crash)
            if fault.restart_at is not None:

                def restart(f=fault):
                    for node in f.nodes:
                        cluster.join_node(node)

                add(fault.restart_at, restart)
        # unknown kinds are reported by threaded_coverage as skipped

    dispatch = {
        "join": cluster.join_node,
        "leave": cluster.leave_node,
        "crash": cluster.crash_node,
    }
    for event in spec.churn.sorted_events():
        add(event.time, lambda fn=dispatch[event.action], n=event.node: fn(n))

    actions.sort(key=lambda entry: (entry[0], entry[1]))
    return actions


def run_scenario_threaded(
    spec: ScenarioSpec,
    wall_seconds: Optional[float] = None,
    gossip_period: float = 0.1,
    transport: str = "memory",
) -> ThreadedScenarioReport:
    """Drive a scenario on :class:`~repro.runtime.cluster.ThreadedCluster`.

    ``wall_seconds`` bounds the run (default: the whole scenario at the
    scaled clock). The feeder-and-fault loop runs on the calling thread:
    it paces offers through each sender node's admission queue and fires
    every scheduled condition — capacity/rate changes, chaos-rule
    updates, node crash/restart, churn — at its scaled offset.
    """
    scale = gossip_period / spec.system.gossip_period
    wall = spec.duration * scale if wall_seconds is None else wall_seconds
    # the sim path validates inside FaultScript.apply; this path opens/
    # closes windows itself, so it must reject ambiguous overlapping
    # same-kind windows just as loudly (specs validate at construction,
    # but FaultScript is a mutable value that may have grown since) —
    # and before any thread or transport exists
    spec.faults.validate()
    cluster = ThreadedCluster.from_scenario(
        spec, gossip_period=gossip_period, transport=transport
    )
    injected, skipped = threaded_coverage(spec)

    feeders = [_Feeder(sender, scale, spec.seed) for sender in spec.senders]
    actions = _threaded_actions(spec, cluster, scale, feeders)
    offers = 0
    next_action = 0

    cluster.start()
    t0 = time.monotonic()
    try:
        while True:
            now = time.monotonic() - t0
            if now >= wall:
                break
            while next_action < len(actions) and actions[next_action][0] <= now:
                _, _, fire = actions[next_action]
                next_action += 1
                fire()
            wake = t0 + now + 0.02
            for feeder in feeders:
                while feeder.due(now):
                    cluster.broadcast(feeder.node)
                    offers += 1
                    feeder.advance()
                if feeder.stop is None or feeder.next < feeder.stop:
                    wake = min(wake, t0 + feeder.next)
            if next_action < len(actions):
                wake = min(wake, t0 + actions[next_action][0])
            pause = wake - time.monotonic()
            if pause > 0:
                time.sleep(min(pause, 0.02))
    finally:
        cluster.stop()

    # threads are joined: protocol state is safe to read now (restarted
    # nodes report their current incarnation — a fresh process's counts,
    # exactly what a real redeploy would show)
    member_ids = sorted(cluster.nodes)
    delivered = [
        cluster.protocol_of(node).stats.events_delivered for node in member_ids
    ]
    duplicates = sum(
        getattr(cluster.protocol_of(node).stats, "duplicates_seen", 0)
        for node in member_ids
    )
    admitted = sum(node.offers_admitted for node in cluster.nodes.values())
    chaos = cluster.chaos
    return ThreadedScenarioReport(
        scenario=spec.name,
        n_nodes=spec.n_nodes,
        wall_seconds=wall,
        time_scale=scale,
        offers=offers,
        admitted=admitted,
        delivered_total=sum(delivered),
        delivered_min=min(delivered),
        delivered_max=max(delivered),
        skipped=skipped,
        duplicates_seen=duplicates,
        injected=injected,
        chaos_eaten=0 if chaos is None else chaos.stats.eaten,
        chaos_delayed=0 if chaos is None else chaos.stats.delayed,
        chaos_oneway_dropped=0 if chaos is None else chaos.stats.oneway_blocked,
    )


# ----------------------------------------------------------------------
# process path
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProcessScenarioReport:
    """What a multi-process scenario run did, injected, and could not model.

    Field-compatible with :class:`ThreadedScenarioReport` (every shared
    field means the same thing) plus process-only observability:
    ``n_workers``, cross-worker ``send_failures``/``decode_errors`` and
    respawn ``bind_errors``.
    """

    scenario: str
    n_nodes: int
    n_workers: int
    wall_seconds: float
    time_scale: float  # wall seconds per spec second
    offers: int
    admitted: int
    delivered_total: int
    delivered_min: int
    delivered_max: int
    skipped: tuple[str, ...]  # conditions this driver could not lower
    skipped_count: int = 0  # derived — see __post_init__
    duplicates_seen: int = 0  # gossip-level duplicate summaries, all nodes
    injected: tuple[str, ...] = ()  # conditions lowered onto the workers
    injected_count: int = 0  # derived, like skipped_count
    chaos_eaten: int = 0  # datagrams the chaos layer dropped/capped/blocked
    chaos_delayed: int = 0  # datagrams deferred through loop.call_later
    chaos_oneway_dropped: int = 0  # datagrams eaten by a one-way (directed) cut
    decode_errors: int = 0  # datagrams that failed BinaryCodec.decode
    send_failures: int = 0  # sendto/address-book failures across all workers
    bind_errors: int = 0  # respawn-time rebinds that never got their port back
    port_attempts: int = 1  # seeded port maps tried before all workers bound

    def __post_init__(self) -> None:
        object.__setattr__(self, "skipped_count", len(self.skipped))
        object.__setattr__(self, "injected_count", len(self.injected))


def run_scenario_process(
    spec: ScenarioSpec,
    wall_seconds: Optional[float] = None,
    gossip_period: float = 0.1,
    workers: Optional[int] = None,
) -> ProcessScenarioReport:
    """Drive a scenario on :class:`~repro.runtime.process_cluster.ProcessCluster`.

    Same time scaling and condition vocabulary as
    :func:`run_scenario_threaded`, but the group is sharded across
    ``workers`` OS processes gossiping over real UDP sockets; feeders,
    chaos windows, crash/restart and churn all fire inside the owning
    worker's event loop (see :mod:`repro.runtime.worker`). The report's
    ``injected``/``skipped`` tuples come from :func:`process_coverage`,
    so coverage is audited, not asserted.
    """
    # imported lazily: the process driver pulls in multiprocessing and
    # the asyncio worker, which sim-only callers never need
    from repro.runtime.process_cluster import ProcessCluster

    cluster = ProcessCluster(spec, gossip_period=gossip_period, n_workers=workers)
    result = cluster.run(wall_seconds=wall_seconds)
    injected, skipped = process_coverage(spec)
    delivered = sorted(result.delivered.values()) or [0]
    return ProcessScenarioReport(
        scenario=spec.name,
        n_nodes=spec.n_nodes,
        n_workers=result.n_workers,
        wall_seconds=result.wall_seconds,
        time_scale=result.time_scale,
        offers=result.offers,
        admitted=result.admitted,
        delivered_total=sum(delivered),
        delivered_min=delivered[0],
        delivered_max=delivered[-1],
        skipped=skipped,
        duplicates_seen=result.duplicates,
        injected=injected,
        chaos_eaten=result.chaos.eaten,
        chaos_delayed=result.chaos.delayed,
        chaos_oneway_dropped=result.chaos.oneway_blocked,
        decode_errors=result.decode_errors,
        send_failures=result.send_failures,
        bind_errors=result.bind_errors,
        port_attempts=result.port_attempts,
    )
