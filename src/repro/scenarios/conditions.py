"""Composable stress conditions.

Each condition is a small frozen value with one method,
``apply_to(spec) -> spec``: it folds itself into a
:class:`~repro.scenarios.spec.ScenarioSpec`'s fault/churn/resource
scripts and returns a *new* spec (scripts are copied, never mutated, so
a base scenario can be stressed several ways without cross-talk).
Conditions resolve node sets lazily against the spec they are applied
to — ``fraction=0.3`` means "the last 30% of the group", deterministic
and independent of how large the scenario happens to be.

Compose with :meth:`ScenarioSpec.stressed`::

    spec = base.stressed(
        CorrelatedLoss(time=60, duration=20, p=0.75),
        CrashGroup(time=100, fraction=0.25, restart_after=40),
    )
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.membership.churn import ChurnScript
from repro.scenarios.spec import ScenarioSpec
from repro.sim.faults import FaultScript
from repro.workload.dynamics import ResourceScript

__all__ = [
    "CorrelatedLoss",
    "Partition",
    "OneWayPartition",
    "LossyLinks",
    "BandwidthCap",
    "CrashGroup",
    "RollingChurn",
    "BufferSqueeze",
    "LoadSpike",
    "SlowReceivers",
]


def _resolve_nodes(
    spec: ScenarioSpec, nodes: Optional[Sequence], fraction: Optional[float]
) -> tuple:
    """A deterministic node set: explicit ``nodes``, or the highest-id
    ``fraction`` of the group *among non-sender nodes*.

    The spec knows its senders, and profiles stride them across the id
    space, so a naive "last N ids" can land on a sender — crashing the
    workload driver or squeezing a sender's buffer is never what a
    fraction-shaped condition means. The count is still a fraction of
    the whole group (``fraction=0.2`` stresses 20% of the nodes); only
    the *selection* skips senders, taking the highest non-sender ids so
    the resolution stays deterministic and, when senders sit at the
    front by convention, identical to the historical tail.
    """
    if nodes is not None:
        return tuple(nodes)
    if fraction is None:
        raise ValueError("need either nodes or fraction")
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    count = max(1, int(round(spec.n_nodes * fraction)))
    senders = set(spec.sender_ids)
    pool = [n for n in range(spec.n_nodes) if n not in senders]
    if count > len(pool):
        raise ValueError(
            f"fraction={fraction} asks for {count} nodes but only "
            f"{len(pool)} non-sender nodes exist (senders drive the "
            "workload and are never picked by fraction)"
        )
    return tuple(sorted(pool[-count:]))


def _copy_churn(spec: ScenarioSpec) -> ChurnScript:
    return ChurnScript(list(spec.churn.events))


def _copy_resources(spec: ScenarioSpec) -> ResourceScript:
    return ResourceScript(list(spec.resources.changes))


@dataclass(frozen=True, slots=True)
class CorrelatedLoss:
    """A Bernoulli loss burst — the §5 caveat the paper admits to."""

    time: float
    duration: float
    p: float

    def apply_to(self, spec: ScenarioSpec) -> ScenarioSpec:
        script = FaultScript(list(spec.faults.faults))
        script.loss(self.time, self.duration, self.p)
        return spec.replace(faults=script)


@dataclass(frozen=True, slots=True)
class Partition:
    """Split the group into ``n_groups`` contiguous blocks, then heal."""

    time: float
    duration: float
    n_groups: int = 2

    def apply_to(self, spec: ScenarioSpec) -> ScenarioSpec:
        if self.n_groups < 2:
            raise ValueError("a partition needs at least two groups")
        per = max(1, spec.n_nodes // self.n_groups)
        groups = []
        for g in range(self.n_groups):
            lo = g * per
            hi = spec.n_nodes if g == self.n_groups - 1 else (g + 1) * per
            groups.append(list(range(lo, hi)))
        script = FaultScript(list(spec.faults.faults))
        script.partition(self.time, self.duration, groups)
        return spec.replace(faults=script)


@dataclass(frozen=True, slots=True)
class OneWayPartition:
    """A *directed* reachability cut: the group splits into ``n_groups``
    contiguous blocks and the ``blocked`` group-index edges stop flowing
    — the asymmetric-link shape (a rack that can hear the cluster but
    not speak to it, a NATed minority, a half-broken uplink)."""

    time: float
    duration: float
    n_groups: int = 2
    blocked: tuple[tuple[int, int], ...] = ((0, 1),)

    def apply_to(self, spec: ScenarioSpec) -> ScenarioSpec:
        if self.n_groups < 2:
            raise ValueError("a one-way partition needs at least two groups")
        per = max(1, spec.n_nodes // self.n_groups)
        groups = []
        for g in range(self.n_groups):
            lo = g * per
            hi = spec.n_nodes if g == self.n_groups - 1 else (g + 1) * per
            groups.append(list(range(lo, hi)))
        script = FaultScript(list(spec.faults.faults))
        script.oneway_partition(self.time, self.duration, groups, self.blocked)
        return spec.replace(faults=script)


@dataclass(frozen=True, slots=True)
class LossyLinks:
    """Per-link Bernoulli loss at probability ``p`` on a sparse link set.

    Either name the directed ``pairs`` explicitly, or give ``fraction``:
    the highest-id non-sender nodes become *flaky* — every directed link
    touching one of them (both in and out) loses at ``p`` while the
    window is open. Unlike :class:`CorrelatedLoss` the rest of the
    network is untouched, so heterogeneous per-link degradation and a
    symmetric loss/partition window may legally overlap.
    """

    time: float
    duration: float
    p: float
    pairs: Optional[tuple[tuple, ...]] = None
    fraction: Optional[float] = None

    def apply_to(self, spec: ScenarioSpec) -> ScenarioSpec:
        if self.pairs is not None:
            links = {(src, dst): self.p for src, dst in self.pairs}
        else:
            flaky = set(_resolve_nodes(spec, None, self.fraction))
            links = {}
            for node in sorted(flaky):
                for other in range(spec.n_nodes):
                    if other == node:
                        continue
                    links[(node, other)] = self.p
                    links[(other, node)] = self.p
        script = FaultScript(list(spec.faults.faults))
        script.link_loss(self.time, self.duration, links)
        return spec.replace(faults=script)


@dataclass(frozen=True, slots=True)
class BandwidthCap:
    """Cap total network throughput (msg/s) for a window — a saturated
    switch/link, the resource-exhaustion stressor."""

    time: float
    duration: float
    rate: float

    def apply_to(self, spec: ScenarioSpec) -> ScenarioSpec:
        script = FaultScript(list(spec.faults.faults))
        script.bandwidth_cap(self.time, self.duration, self.rate)
        return spec.replace(faults=script)


@dataclass(frozen=True, slots=True)
class CrashGroup:
    """A correlated crash: a whole node set fails at one instant,
    optionally restarting (fresh state, old identity) later."""

    time: float
    nodes: Optional[tuple] = None
    fraction: Optional[float] = None
    restart_after: Optional[float] = None

    def apply_to(self, spec: ScenarioSpec) -> ScenarioSpec:
        victims = _resolve_nodes(spec, self.nodes, self.fraction)
        sender_victims = set(victims) & set(spec.sender_ids)
        if sender_victims:
            raise ValueError(
                f"CrashGroup would take down sender nodes {sorted(sender_victims)}; "
                "point it at non-sender nodes (senders drive the workload)"
            )
        restart_at = None if self.restart_after is None else self.time + self.restart_after
        script = FaultScript(list(spec.faults.faults))
        script.crash(self.time, victims, restart_at=restart_at)
        return spec.replace(faults=script)


@dataclass(frozen=True, slots=True)
class RollingChurn:
    """One node at a time departs (and optionally rejoins) on a cadence —
    the rolling-restart / flaky-fleet shape."""

    start: float
    interval: float
    nodes: Optional[tuple] = None
    fraction: Optional[float] = None
    rejoin_after: Optional[float] = None
    action: str = "leave"

    def apply_to(self, spec: ScenarioSpec) -> ScenarioSpec:
        churned = _resolve_nodes(spec, self.nodes, self.fraction)
        sender_victims = set(churned) & set(spec.sender_ids)
        if sender_victims:
            raise ValueError(
                f"RollingChurn would churn sender nodes {sorted(sender_victims)}; "
                "point it at non-sender nodes (senders drive the workload)"
            )
        script = _copy_churn(spec)
        script.rolling(
            self.start,
            self.interval,
            churned,
            rejoin_after=self.rejoin_after,
            action=self.action,
        )
        return spec.replace(churn=script)


@dataclass(frozen=True, slots=True)
class BufferSqueeze:
    """Some nodes' buffers shrink mid-run (and may partially recover) —
    the Figure 9 resource-exhaustion shape."""

    time: float
    capacity: int
    nodes: Optional[tuple] = None
    fraction: Optional[float] = None
    restore_at: Optional[float] = None
    restore_to: Optional[int] = None

    def apply_to(self, spec: ScenarioSpec) -> ScenarioSpec:
        squeezed = _resolve_nodes(spec, self.nodes, self.fraction)
        script = _copy_resources(spec)
        script.squeeze(
            self.time,
            squeezed,
            self.capacity,
            restore_at=self.restore_at,
            restore_to=self.restore_to,
        )
        return spec.replace(resources=script)


@dataclass(frozen=True, slots=True)
class LoadSpike:
    """Every sender multiplies its offered rate by ``factor`` for a
    window — the flash-crowd shape."""

    time: float
    duration: float
    factor: float

    def apply_to(self, spec: ScenarioSpec) -> ScenarioSpec:
        if self.factor <= 0:
            raise ValueError("factor must be > 0")
        script = _copy_resources(spec)
        for sender in spec.senders:
            script.spike(
                self.time,
                self.duration,
                [sender.node],
                rate=sender.rate * self.factor,
                base_rate=sender.rate,
            )
        return spec.replace(resources=script)


@dataclass(frozen=True, slots=True)
class SlowReceivers:
    """Some nodes are under-provisioned from the start (tiny buffers) —
    the heterogeneous-straggler shape the κ-smallest extension targets."""

    capacity: int
    nodes: Optional[tuple] = None
    fraction: Optional[float] = None

    def apply_to(self, spec: ScenarioSpec) -> ScenarioSpec:
        stragglers = _resolve_nodes(spec, self.nodes, self.fraction)
        script = _copy_resources(spec)
        script.set_capacity(0.0, stragglers, self.capacity)
        return spec.replace(resources=script)
