"""Legacy setuptools shim.

The offline reproduction environment lacks the ``wheel`` package, so PEP
517/660 builds (which shell out to ``bdist_wheel``) fail. This shim lets
``pip install -e .`` use the legacy ``setup.py develop`` path; all real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
