"""Scalability study — gossip's per-node cost stays flat as n grows.

Not a paper figure; quantifies the §1 scalability claim on this
implementation and shows why τ is deployment-specific (it grows with n,
hence the paper's per-system calibration step). The reproduction brief
flags large-scale latency experiments as the slow part of a Python
simulation — this bench keeps n modest by default; the `paper` profile
raises the ceiling.
"""

from repro.experiments.report import render_table
from repro.experiments.scalability import scale_sweep


def test_scalability(benchmark, profile, emit):
    sizes = (15, 30, 60) if profile.name == "quick" else (15, 30, 60, 120)

    result = benchmark.pedantic(
        lambda: scale_sweep(sizes, rate_per_node_group=0.5), rounds=1, iterations=1
    )

    emit(
        "scalability",
        render_table(
            ["n nodes", "latency (s)", "avg recv (%)", "per-node goodput (msg/s)", "drop age"],
            [
                (
                    p.n_nodes,
                    p.mean_latency,
                    100 * p.avg_receiver_fraction,
                    p.per_node_goodput,
                    p.mean_drop_age,
                )
                for p in result
            ],
            title="Scalability — load 0.5·n msg/s, fanout 4, buffer 60",
            digits=2,
        ),
    )

    by_n = {p.n_nodes: p for p in result}
    smallest, largest = by_n[min(sizes)], by_n[max(sizes)]
    # reliability holds at every size
    for p in result:
        assert p.avg_receiver_fraction > 0.97
    # latency grows with n, but far slower than linearly (log-ish)
    assert largest.mean_latency > smallest.mean_latency
    ratio_n = largest.n_nodes / smallest.n_nodes
    assert largest.mean_latency < smallest.mean_latency * ratio_n / 1.5
    # every node delivers the whole offered load (0.5 msg/s per member of
    # the group): gossip keeps up with a load that grows with n
    for p in result:
        assert abs(p.per_node_goodput - 0.5 * p.n_nodes) < 0.1 * 0.5 * p.n_nodes
    # deeper dissemination at larger n: drop age (≈ dissemination depth)
    # is non-decreasing in n (NaN = no drops at all, trivially fine)
    if largest.mean_drop_age == largest.mean_drop_age and (
        smallest.mean_drop_age == smallest.mean_drop_age
    ):
        assert largest.mean_drop_age >= smallest.mean_drop_age - 0.5
