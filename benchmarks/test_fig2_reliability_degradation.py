"""Figure 2 — reliability degradation under increasing input rate.

Paper: with static resources, the share of messages delivered to >95%
of receivers collapses as the offered rate grows; the narrative in §2.1
adds that the mean drop age falls with it (8.5 → 3.7 → 2.7 hops at
10/30/60 msg/s on their testbed).
"""

from repro.experiments.figures import figure2
from repro.experiments.report import render_table


def test_fig2_reliability_degradation(benchmark, profile, emit):
    result = benchmark.pedantic(lambda: figure2(profile), rounds=1, iterations=1)

    table = render_table(
        ["input rate (msg/s)", "msgs to >95% (%)", "avg receivers (%)", "drop age (hops)"],
        [
            (r.input_rate, r.atomicity_pct, r.avg_receiver_pct, r.drop_age)
            for r in result.rows
        ],
        title=(
            f"Figure 2 — reliability degradation "
            f"(lpbcast, buffer={result.buffer_capacity}, {profile.name} profile)"
        ),
        digits=1,
    )
    emit("figure2", table)

    rows = result.rows
    # Shape: reliability is (weakly) worse at the top of the sweep ...
    assert rows[-1].atomicity_pct < rows[0].atomicity_pct - 20
    # ... low rates are fine, the highest rate is clearly degraded.
    assert rows[0].atomicity_pct > 90
    assert rows[-1].atomicity_pct < 60
    # Drop age falls as the load grows (the §2.3 congestion signal).
    assert rows[-1].drop_age < rows[0].drop_age
    # And the degradation is monotone-ish: every later row is no better
    # than the row two positions earlier (tolerates simulation noise).
    for earlier, later in zip(rows, rows[2:]):
        assert later.atomicity_pct <= earlier.atomicity_pct + 5
