"""Ablations over the §3.4 design parameters.

The paper discusses how to choose each constant of the mechanism but
(naturally) does not plot the consequences of choosing badly. These
benchmarks fill that in: each sweeps one parameter in an overloaded
configuration and reports rate stability, throughput and reliability so
the guidance of §3.4 can be checked against behaviour.

* α — EWMA weight: low α makes ``avgAge`` jumpy; §3.4 says "close to 1".
* ρ — randomized increase: ρ=1 lets all senders ramp together (§3.3's
  oscillation concern); small ρ smooths the group ramp.
* L/H spread — hysteresis width: too narrow oscillates, too wide is
  sluggish and conservative.
* W — minBuff window: longer windows delay reclaiming released capacity
  (measured as the grant shortly after a capacity recovery).
"""

import math

from repro.core.config import AdaptiveConfig
from repro.experiments.harness import spec_for_profile
from repro.experiments.report import render_table
from repro.gossip.config import SystemConfig
from repro.metrics.stats import mean, stdev
from repro.workload.cluster import SimCluster


def overloaded_spec(profile, adaptive):
    small = profile.buffer_sizes[1]
    return spec_for_profile(
        profile, "adaptive", buffer_capacity=small, adaptive=adaptive
    )


def rate_stability(profile, adaptive):
    """(input rate, coefficient of variation of the grant, atomicity %)."""
    from repro.experiments.harness import build_cluster
    from repro.metrics.delivery import analyze_delivery

    spec = overloaded_spec(profile, adaptive)
    cluster = build_cluster(spec)
    cluster.run(until=spec.duration)
    senders = list(spec.sender_ids)
    w0, w1 = spec.window
    series = [
        v * len(senders)
        for _, v in _sender_series(cluster, senders, w0, w1)
        if not math.isnan(v)
    ]
    cv = stdev(series) / mean(series) if series else math.nan
    stats = analyze_delivery(
        cluster.metrics.messages_in_window(w0, w1), cluster.group_size
    )
    return cluster.metrics.admitted.rate(w0, w1), cv, stats.atomicity_pct


def _sender_series(cluster, senders, w0, w1):
    acc: dict[float, list[float]] = {}
    for s in senders:
        g = cluster.metrics.gauge("allowed_rate", s)
        if g is None:
            continue
        for t, v in g.series(w0, w1):
            if not math.isnan(v):
                acc.setdefault(t, []).append(v)
    return sorted((t, mean(vs)) for t, vs in acc.items())


def test_ablation_alpha(benchmark, profile, emit):
    def sweep():
        rows = []
        for alpha in (0.0, 0.5, 0.9, 0.99):
            acfg = AdaptiveConfig(age_critical=profile.tau_hint, alpha=alpha)
            rows.append((alpha, *rate_stability(profile, acfg)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_alpha",
        render_table(
            ["alpha", "input (msg/s)", "grant CoV", "atomicity (%)"],
            rows,
            title="Ablation — EWMA weight α (overloaded small buffer)",
            digits=2,
        ),
    )
    by_alpha = {r[0]: r for r in rows}
    # Every α still protects reliability...
    for r in rows:
        assert r[3] > 60.0
    # ...but the paper's "close to 1" choice is no less stable than the
    # degenerate instantaneous estimator (α=0).
    assert by_alpha[0.9][2] <= by_alpha[0.0][2] * 1.5


def test_ablation_rho(benchmark, profile, emit):
    def sweep():
        rows = []
        for rho in (0.05, 0.2, 1.0):
            acfg = AdaptiveConfig(age_critical=profile.tau_hint, rho=rho)
            rows.append((rho, *rate_stability(profile, acfg)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_rho",
        render_table(
            ["rho", "input (msg/s)", "grant CoV", "atomicity (%)"],
            rows,
            title="Ablation — randomized increase ρ",
            digits=2,
        ),
    )
    for r in rows:
        assert r[3] > 60.0
    # A tiny ρ must not starve the senders: throughput within 2x of ρ=1.
    by_rho = {r[0]: r for r in rows}
    assert by_rho[0.05][1] > by_rho[1.0][1] * 0.5


def test_ablation_thresholds(benchmark, profile, emit):
    def sweep():
        rows = []
        for offset in (0.1, 0.5, 1.5):
            acfg = AdaptiveConfig(age_critical=profile.tau_hint, mark_offset=offset)
            rows.append((offset, *rate_stability(profile, acfg)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_thresholds",
        render_table(
            ["L/H offset", "input (msg/s)", "grant CoV", "atomicity (%)"],
            rows,
            title="Ablation — hysteresis spread around τ",
            digits=2,
        ),
    )
    for r in rows:
        assert r[3] > 60.0


def test_ablation_window(benchmark, profile, emit):
    """W controls how fast *released* capacity is reclaimed (§3.4)."""

    def recovery_rate(window):
        acfg = AdaptiveConfig(
            age_critical=profile.tau_hint, window=window, initial_rate=10.0
        )
        system = SystemConfig(
            buffer_capacity=profile.buffer_sizes[-1],
            dedup_capacity=profile.dedup_capacity,
            max_age=profile.max_age,
        )
        cluster = SimCluster(
            n_nodes=profile.n_nodes,
            system=system,
            protocol="adaptive",
            adaptive=acfg,
            seed=profile.seed,
        )
        senders = profile.sender_ids()
        cluster.add_senders(senders, rate_each=profile.offered_load / len(senders))
        # shrink one node hard, then restore it mid-run
        victim = profile.n_nodes - 1
        cluster.set_capacity(victim, profile.buffer_sizes[0] // 2)
        cluster.at(60.0, lambda: cluster.set_capacity(victim, profile.buffer_sizes[-1]))
        cluster.run(until=150.0)
        # grant shortly after recovery measures reclamation speed
        soon = cluster.metrics.gauge_mean_over("allowed_rate", senders, 90, 120)
        return soon * len(senders)

    def sweep():
        return [(w, recovery_rate(w)) for w in (1, 4, 12)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_window",
        render_table(
            ["W (periods)", "grant 30-60s after recovery (msg/s)"],
            rows,
            title="Ablation — minBuff window W vs capacity reclamation",
            digits=1,
        ),
    )
    by_w = dict(rows)
    # Longer windows reclaim released capacity more slowly.
    assert by_w[1] >= by_w[12] * 0.95
