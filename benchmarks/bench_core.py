"""Execution-core benchmark: batched vs per-node-timer round dispatch.

Runs a large lpbcast dissemination (1000+ nodes, 60 virtual seconds by
default) under both dispatch modes of :class:`SimCluster`, checks the
runs are byte-identical, and writes machine-readable results — node-count
scaling plus hot-path micro-timings — to ``BENCH_core.json`` at the repo
root so the performance trajectory is comparable across PRs.

The scenario is the regime large-scale gossip analyses use: a
round-synchronous schedule (fixed phase, no jitter), fanout ~log2(n), a
constant-latency lossless LAN and a light broadcast stream. The batched
path fires each cluster round from one heap pop and multicasts each
node's fanout in one network call; the per-node path is the seed's
timer-per-node, send-per-emission implementation, kept as the reference.

Usage::

    PYTHONPATH=src python benchmarks/bench_core.py            # full (writes BENCH_core.json)
    PYTHONPATH=src python benchmarks/bench_core.py --quick    # small sizes, no file
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import platform
import sys
import time
import timeit

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.gossip.config import SystemConfig  # noqa: E402
from repro.sim.network import ConstantLatency  # noqa: E402
from repro.workload.cluster import SimCluster  # noqa: E402

ROOT = pathlib.Path(__file__).resolve().parent.parent


def build(n_nodes: int, dispatch: str) -> SimCluster:
    fanout = max(4, round(math.log2(n_nodes)))
    system = SystemConfig(
        fanout=fanout,
        gossip_period=1.0,
        buffer_capacity=30,
        dedup_capacity=max(4000, 8 * n_nodes),
        max_age=8,
        round_jitter=0.0,
        round_phase=0.0,
    )
    cluster = SimCluster(
        n_nodes=n_nodes,
        system=system,
        protocol="lpbcast",
        seed=2003,
        latency=ConstantLatency(0.01),
        dispatch=dispatch,
        sample_gauges=False,
    )
    cluster.add_senders([0, n_nodes // 2], rate_each=0.5)
    return cluster


def fingerprint(cluster: SimCluster) -> tuple:
    m = cluster.metrics
    return (
        m.admitted.total,
        m.deliveries.total,
        m.drops_overflow.total,
        m.duplicate_deliveries,
        cluster.network.stats.sent,
        cluster.network.stats.delivered,
    )


def run_one(n_nodes: int, dispatch: str, duration: float, repeats: int = 2) -> dict:
    """Best-of-``repeats`` wall time (identical runs; min rejects noise)."""
    wall = math.inf
    for _ in range(repeats):
        cluster = build(n_nodes, dispatch)
        t0 = time.perf_counter()
        cluster.run(until=duration)
        wall = min(wall, time.perf_counter() - t0)
    return {
        "n_nodes": n_nodes,
        "dispatch": dispatch,
        "virtual_seconds": duration,
        "wall_seconds": round(wall, 4),
        "heap_events": cluster.sim.events_dispatched,
        "deliveries": cluster.metrics.deliveries.total,
        "_fingerprint": fingerprint(cluster),
    }


def micro_timings() -> dict:
    """Hot-path micro timings (µs/op, best of 5 runs)."""
    setup = """
import random
from repro.gossip.buffer import EventBuffer
from repro.gossip.config import SystemConfig
from repro.gossip.events import EventId, EventSummary
from repro.gossip.lpbcast import LpbcastProtocol
from repro.gossip.protocol import GossipMessage
from repro.membership.full import Directory, FullMembershipView

buf = EventBuffer(180)
for i in range(180):
    buf.add(EventId(i % 60, i), age=i % 10)
counter = iter(range(10**9))

config = SystemConfig(buffer_capacity=180, dedup_capacity=400_000)
directory = Directory(range(60))
proto = LpbcastProtocol(0, config, FullMembershipView(directory, 0), random.Random(1))
for i in range(180):
    proto.broadcast(None, now=0.0)
clock = iter(x * 1.0 for x in range(1, 10**9))
receiver = LpbcastProtocol(1, config, FullMembershipView(directory, 1), random.Random(2))
message = GossipMessage(
    sender=0,
    events=tuple(EventSummary(EventId("s", i), i % 10, None) for i in range(180)),
)
receiver.on_receive(message, now=0.5)  # prime: all duplicates afterwards
"""
    cases = {
        "buffer_add_evict": "buf.add(EventId('b', next(counter)), age=0)",
        "buffer_snapshot": "buf.snapshot()",
        "buffer_sync_age_raise": "buf.sync_age(EventId(0, 0), buf.age_of(EventId(0, 0)) + 1)",
        "round_batch_180ev": "proto.on_round_batch(next(clock))",
        "receive_180_duplicates": "receiver.on_receive(message, now=1.0)",
    }
    out = {}
    for name, stmt in cases.items():
        timer = timeit.Timer(stmt, setup=setup)
        number = 2000
        best = min(timer.repeat(repeat=5, number=number)) / number
        out[f"{name}_us"] = round(best * 1e6, 3)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="*", default=[250, 500, 1000])
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument("--out", default=str(ROOT / "BENCH_core.json"))
    parser.add_argument(
        "--quick", action="store_true", help="tiny sizes, print only, no file"
    )
    args = parser.parse_args(argv)
    sizes = [60, 120] if args.quick else args.sizes
    duration = 20.0 if args.quick else args.duration

    scaling = []
    speedups = {}
    for n in sizes:
        timers = run_one(n, "timers", duration)
        batched = run_one(n, "batched", duration)
        if timers.pop("_fingerprint") != batched.pop("_fingerprint"):
            raise SystemExit(f"dispatch modes diverged at n={n}: benchmark invalid")
        speedup = timers["wall_seconds"] / batched["wall_seconds"]
        speedups[str(n)] = round(speedup, 3)
        scaling.extend([timers, batched])
        print(
            f"n={n:5d}  timers {timers['wall_seconds']:7.2f}s "
            f"({timers['heap_events']} events)  batched "
            f"{batched['wall_seconds']:7.2f}s ({batched['heap_events']} events)  "
            f"speedup {speedup:.2f}x"
        )

    micro = micro_timings()
    for name, value in micro.items():
        print(f"micro {name:28s} {value:9.3f} us")

    doc = {
        "benchmark": "core-dispatch",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scenario": {
            "protocol": "lpbcast",
            "round_synchronous": True,
            "latency": "constant 10ms",
            "buffer_capacity": 30,
            "senders": 2,
            "offered_load_msgs_per_s": 1.0,
            "fanout": "max(4, log2(n))",
        },
        "scaling": scaling,
        "speedup_batched_vs_timers": speedups,
        "micro_hot_paths": micro,
    }
    if not args.quick:
        out = pathlib.Path(args.out)
        out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
