"""Execution-core benchmark: batched vs per-node-timer round dispatch.

Runs a large lpbcast dissemination (1000+ nodes, 60 virtual seconds by
default) under both dispatch modes of :class:`SimCluster`, checks the
runs are byte-identical, and writes machine-readable results — node-count
scaling plus hot-path micro-timings — to ``BENCH_core.json`` at the repo
root so the performance trajectory is comparable across PRs.

The scenario is the regime large-scale gossip analyses use: a
round-synchronous schedule (fixed phase, no jitter), fanout ~log2(n), a
constant-latency lossless LAN and a light broadcast stream. The batched
path fires each cluster round from one heap pop and multicasts each
node's fanout in one network call; the per-node path is the seed's
timer-per-node, send-per-emission implementation, kept as the reference.

A second ``mega_scaling`` tier runs the same scenario at the paper's
fanout (4) through the columnar vector executor
(:mod:`repro.sim.vector`, ``--dispatch vector``) at 10k and 50k nodes,
with a one-shot batched run at the smallest size proving the columnar
path byte-identical in-regime.

A ``process_scaling`` tier runs the bench regime on the two *live*
drivers — threaded and multi-process UDP — and reports nodes-per-core
(group size over CPU utilization at the scaled clock), the number that
sizes worker counts on real deployments.

A ``mega_parallel`` tier runs the mega regime through the sharded
multicore vector lane (:mod:`repro.sim.vector_parallel`,
``--dispatch vector --shards N``) at 100k nodes against the single-core
vector lane — parity-checked byte for byte — and finishes with a
1M-node aggregate-only completion run. ``host_cpu_count`` is recorded
alongside the speedups: on a single-core host the sharded lane can only
demonstrate parity and overhead, not speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_core.py            # full (writes BENCH_core.json)
    PYTHONPATH=src python benchmarks/bench_core.py --quick    # n=100 smoke, print only
    PYTHONPATH=src python benchmarks/bench_core.py --quick --out q.json   # CI artifact
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import os
import pathlib
import platform
import sys
import time
import timeit

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.gossip.config import SystemConfig  # noqa: E402
from repro.sim.faults import FaultScript  # noqa: E402
from repro.sim.network import ConstantLatency  # noqa: E402
from repro.workload.cluster import SimCluster  # noqa: E402

ROOT = pathlib.Path(__file__).resolve().parent.parent


def build(n_nodes: int, dispatch: str) -> SimCluster:
    fanout = max(4, round(math.log2(n_nodes)))
    system = SystemConfig(
        fanout=fanout,
        gossip_period=1.0,
        buffer_capacity=30,
        dedup_capacity=max(4000, 8 * n_nodes),
        max_age=8,
        round_jitter=0.0,
        round_phase=0.0,
    )
    cluster = SimCluster(
        n_nodes=n_nodes,
        system=system,
        protocol="lpbcast",
        seed=2003,
        latency=ConstantLatency(0.01),
        dispatch=dispatch,
        sample_gauges=False,
    )
    cluster.add_senders([0, n_nodes // 2], rate_each=0.5)
    return cluster


def build_mega(n_nodes: int, dispatch: str, shards=None) -> SimCluster:
    """The mega-tier regime: the bench scenario at the paper's fanout.

    Differs from :func:`build` in exactly the ways a 10k+-node run
    needs: fanout stays at the paper's 4 (the log2 formula would
    triple per-round work without changing what the tier measures),
    and the collector runs aggregate-only (per-event receiver counts,
    no per-node sets or gauges) so memory stays flat in n. ``shards``
    engages the multicore vector lane (``mega_parallel`` tier).
    """
    system = SystemConfig(
        fanout=4,
        gossip_period=1.0,
        buffer_capacity=30,
        dedup_capacity=max(4000, 8 * n_nodes),
        max_age=8,
        round_jitter=0.0,
        round_phase=0.0,
    )
    cluster = SimCluster(
        n_nodes=n_nodes,
        system=system,
        protocol="lpbcast",
        seed=2003,
        latency=ConstantLatency(0.01),
        dispatch=dispatch,
        sample_gauges=False,
        aggregate_metrics=True,
        shards=shards,
    )
    cluster.add_senders([0, n_nodes // 2], rate_each=0.5)
    return cluster


def fingerprint(cluster: SimCluster) -> tuple:
    m = cluster.metrics
    return (
        m.admitted.total,
        m.deliveries.total,
        m.drops_overflow.total,
        m.duplicate_deliveries,
        cluster.network.stats.sent,
        cluster.network.stats.delivered,
    )


def run_one(
    n_nodes: int,
    dispatch: str,
    duration: float,
    repeats: int = 3,
    builder=build,
) -> dict:
    """Best-of-``repeats`` wall time (identical runs; min rejects noise).

    Garbage from previous measurements is collected before each timed
    run so a large earlier cluster can't tax this one's generational
    sweeps — the timed region then only pays for its own allocation.
    """
    wall = math.inf
    cluster = None
    for _ in range(repeats):
        del cluster
        cluster = builder(n_nodes, dispatch)
        gc.collect()
        t0 = time.perf_counter()
        cluster.run(until=duration)
        wall = min(wall, time.perf_counter() - t0)
    return {
        "n_nodes": n_nodes,
        "dispatch": dispatch,
        "virtual_seconds": duration,
        "wall_seconds": round(wall, 4),
        "heap_events": cluster.sim.events_dispatched,
        "deliveries": cluster.metrics.deliveries.total,
        "_fingerprint": fingerprint(cluster),
    }


def run_mega(sizes: list, duration: float) -> dict:
    """The ``mega_scaling`` tier: columnar vector dispatch at 10k+ nodes.

    Every size runs under ``--dispatch vector``; the smallest size also
    runs once under ``batched`` dispatch (one repeat — at this scale a
    single per-node run costs more than the whole vector sweep) both as
    the in-regime speedup denominator and as a live parity check: the
    two runs must be byte-identical or the tier is invalid.
    """
    from repro.sim.vector import HAVE_NUMPY

    entries = []
    parity_n = min(sizes)
    speedup = None
    for n in sizes:
        row = run_one(n, "vector", duration, repeats=2, builder=build_mega)
        vec_fp = row.pop("_fingerprint")
        entries.append(row)
        print(
            f"mega n={n:6d}  vector {row['wall_seconds']:7.2f}s "
            f"({row['deliveries']:.0f} deliveries)"
        )
        if n == parity_n:
            batched = run_one(n, "batched", duration, repeats=1, builder=build_mega)
            if batched.pop("_fingerprint") != vec_fp:
                raise SystemExit(
                    f"vector dispatch diverged from batched at n={n}: "
                    "mega tier invalid"
                )
            entries.append(batched)
            speedup = round(batched["wall_seconds"] / row["wall_seconds"], 3)
            print(
                f"mega n={n:6d}  batched {batched['wall_seconds']:6.2f}s "
                f"(parity OK, vector speedup {speedup:.1f}x)"
            )
    return {
        "regime": {
            "protocol": "lpbcast",
            "round_synchronous": True,
            "latency": "constant 10ms",
            "buffer_capacity": 30,
            "senders": 2,
            "offered_load_msgs_per_s": 1.0,
            "fanout": 4,
            "aggregate_metrics": True,
        },
        "numpy": HAVE_NUMPY,
        "entries": entries,
        "vector_vs_batched_same_n": speedup,
    }


def _chaos_faults(name: str, n: int, d: float) -> FaultScript:
    """The four faulted bench regimes, shaped like their library
    namesakes but built directly so the tier stays self-contained and
    size-parametric (the flaky link set is reduced: a library-sized
    0.2 fraction at 10k nodes would spend the bench on matrix setup,
    not simulation)."""
    if name == "correlated-loss":
        return FaultScript().loss(0.45 * d, 0.2 * d, 0.75)
    if name == "partition-heal":
        half = n // 2
        return FaultScript().partition(
            0.3 * d, 0.2 * d, [list(range(half)), list(range(half, n))]
        )
    if name == "catastrophic-crash":
        victims = tuple(range(n - max(1, n // 4), n))
        return FaultScript().crash(
            0.4 * d, victims, restart_at=float(round(0.7 * d))
        )
    if name == "flaky-edge":
        links = {}
        for i in range(96):
            dst = (i * 37 + 11) % n
            if dst != i:
                links[(i, dst)] = 0.6
        # the overlapping Bernoulli window forces the sequential loss
        # path (link loss + global loss at once) — the lane's worst case
        return FaultScript().link_loss(0.3 * d, 0.3 * d, links).loss(
            0.35 * d, 0.2 * d, 0.2
        )
    raise ValueError(name)


def run_chaos(n_nodes: int, duration: float) -> dict:
    """The ``mega_chaos`` tier: faulted scenarios on the columnar lane.

    Each scenario runs under vector dispatch and once under batched
    dispatch at the same size — the batched run is both the speedup
    denominator and a live parity check (byte-identical or the tier is
    invalid)."""
    from repro.sim.vector import HAVE_NUMPY

    names = [
        "correlated-loss",
        "partition-heal",
        "catastrophic-crash",
        "flaky-edge",
    ]
    entries = []
    ratios = {}
    for name in names:

        def builder(n: int, dispatch: str, _name=name) -> SimCluster:
            cluster = build_mega(n, dispatch)
            cluster.apply_faults(_chaos_faults(_name, n, duration))
            return cluster

        vec = run_one(n_nodes, "vector", duration, repeats=2, builder=builder)
        bat = run_one(n_nodes, "batched", duration, repeats=1, builder=builder)
        if vec.pop("_fingerprint") != bat.pop("_fingerprint"):
            raise SystemExit(
                f"vector dispatch diverged from batched on faulted "
                f"scenario {name!r} at n={n_nodes}: mega_chaos tier invalid"
            )
        vec["scenario"] = name
        bat["scenario"] = name
        entries.extend([vec, bat])
        ratio = round(bat["wall_seconds"] / vec["wall_seconds"], 3)
        ratios[name] = ratio
        print(
            f"chaos {name:20s} n={n_nodes:6d}  vector "
            f"{vec['wall_seconds']:7.2f}s  batched {bat['wall_seconds']:7.2f}s  "
            f"(parity OK, speedup {ratio:.1f}x)"
        )
    return {
        "regime": {
            "protocol": "lpbcast",
            "round_synchronous": True,
            "latency": "constant 10ms",
            "buffer_capacity": 30,
            "senders": 2,
            "offered_load_msgs_per_s": 1.0,
            "fanout": 4,
            "aggregate_metrics": True,
        },
        "numpy": HAVE_NUMPY,
        "n_nodes": n_nodes,
        "entries": entries,
        "vector_vs_batched": ratios,
    }


def _run_parallel_one(
    n_nodes: int, duration: float, shards: int, repeats: int = 2
) -> dict:
    """Best-of-``repeats`` for the sharded lane, closing workers between
    runs so each timed region pays its own spawn-free inner loops (the
    spawn itself happens before the timer starts)."""
    wall = math.inf
    result = None
    for _ in range(repeats):
        cluster = build_mega(n_nodes, "vector", shards=shards if shards > 1 else None)
        try:
            if shards > 1 and cluster.shards != shards:
                raise SystemExit(
                    f"parallel lane refused at n={n_nodes}, shards={shards}: "
                    f"{cluster.parallel_fallback_reason}"
                )
            gc.collect()
            t0 = time.perf_counter()
            cluster.run(until=duration)
            wall = min(wall, time.perf_counter() - t0)
            result = {
                "n_nodes": n_nodes,
                "dispatch": "vector",
                "shards": shards,
                "virtual_seconds": duration,
                "heap_events": cluster.sim.events_dispatched,
                "deliveries": cluster.metrics.deliveries.total,
                "_fingerprint": fingerprint(cluster),
            }
        finally:
            cluster.close()
    result["wall_seconds"] = round(wall, 4)
    return result


def run_parallel(
    sizes: list, duration: float, shards: int, giga_size: int, giga_duration: float
) -> dict:
    """The ``mega_parallel`` tier: the sharded multicore vector lane.

    Each size runs under ``--shards N`` and under the single-core vector
    lane; the runs must be byte-identical (the lane's contract) or the
    tier is invalid. The speedup is honest hardware truth, so
    ``host_cpu_count`` rides along: on a 1-core host the N workers
    timeshare one core and the ratio measures dispatch overhead, not
    parallelism. ``giga_size`` (0 skips) adds a one-shot aggregate-only
    completion run — the "does 1M nodes finish at all" record, no
    single-core twin (it would double the tier's cost for a number the
    100k parity pass already pins).
    """
    from repro.sim.vector import HAVE_NUMPY

    if not HAVE_NUMPY:
        # stdlib-only hosts (the bench-smoke CI job) still emit the tier
        # key so compare_bench sees a consistent schema — just empty
        print("parallel tier skipped: numpy not installed")
        return {
            "numpy": False,
            "skipped": "numpy not installed; the sharded lane needs it",
            "shards": shards,
            "host_cpu_count": os.cpu_count(),
            "entries": [],
            "sharded_vs_single_core": {},
            "giga_run": None,
        }
    entries = []
    speedups = {}
    for n in sizes:
        single = _run_parallel_one(n, duration, shards=1)
        sharded = _run_parallel_one(n, duration, shards=shards)
        if single.pop("_fingerprint") != sharded.pop("_fingerprint"):
            raise SystemExit(
                f"sharded vector lane diverged from single-core at n={n}, "
                f"shards={shards}: mega_parallel tier invalid"
            )
        speedup = round(single["wall_seconds"] / sharded["wall_seconds"], 3)
        speedups[str(n)] = speedup
        entries.extend([single, sharded])
        print(
            f"parallel n={n:7d}  shards=1 {single['wall_seconds']:7.2f}s  "
            f"shards={shards} {sharded['wall_seconds']:7.2f}s  "
            f"(parity OK, speedup {speedup:.2f}x)"
        )
    giga = None
    if giga_size:
        row = _run_parallel_one(giga_size, giga_duration, shards=shards, repeats=1)
        row.pop("_fingerprint")
        row["completed"] = True
        giga = row
        print(
            f"parallel n={giga_size:7d}  shards={shards} "
            f"{row['wall_seconds']:7.2f}s  ({row['deliveries']:.0f} deliveries, "
            "aggregate-only completion run)"
        )
    return {
        "regime": {
            "protocol": "lpbcast",
            "round_synchronous": True,
            "latency": "constant 10ms",
            "buffer_capacity": 30,
            "senders": 2,
            "offered_load_msgs_per_s": 1.0,
            "fanout": 4,
            "aggregate_metrics": True,
        },
        "numpy": HAVE_NUMPY,
        "shards": shards,
        "host_cpu_count": os.cpu_count(),
        "entries": entries,
        "sharded_vs_single_core": speedups,
        "giga_run": giga,
    }


def _live_spec(n_nodes: int, duration: float):
    """The bench regime as a ScenarioSpec for the live (wall-clock)
    drivers: same fanout/buffer shape as :func:`build`, light two-sender
    load, no faults — what's measured is the runtime substrate, not the
    conditions. Round phase/jitter stay at the live defaults (desync'd
    rounds), matching how the drivers run scenarios."""
    from repro.scenarios.spec import ScenarioSpec, SenderSpec

    return ScenarioSpec(
        name="bench-live",
        summary="the dispatch benchmark regime, on a live driver",
        n_nodes=n_nodes,
        protocol="lpbcast",
        system=SystemConfig(
            fanout=max(4, round(math.log2(n_nodes))),
            gossip_period=1.0,
            buffer_capacity=30,
            dedup_capacity=max(4000, 8 * n_nodes),
            max_age=8,
        ),
        senders=(SenderSpec(0, 1.0), SenderSpec(n_nodes // 2, 1.0)),
        duration=duration,
        warmup=0.0,
        drain=0.0,
        seed=2003,
    )


def run_process_tier(sizes: list, spec_seconds: float) -> dict:
    """The ``process_scaling`` tier: nodes-per-core, process vs threaded.

    Runs the same spec on both live drivers at each size and measures
    CPU cost against wall time. The threaded driver burns this process's
    CPU (``RUSAGE_SELF``); the process driver burns its reaped workers'
    (``RUSAGE_CHILDREN`` — every worker is joined in teardown, so the
    delta captures exactly this run) plus parent coordination. The
    figure of merit is ``nodes_per_core = n / (cpu / wall)`` — how many
    gossiping nodes one saturated core sustains at the scaled clock —
    which is what decides worker counts on real deployments.
    """
    import resource

    from repro.scenarios.runner import run_scenario_process, run_scenario_threaded

    def cpu_now() -> float:
        own = resource.getrusage(resource.RUSAGE_SELF)
        kids = resource.getrusage(resource.RUSAGE_CHILDREN)
        return own.ru_utime + own.ru_stime + kids.ru_utime + kids.ru_stime

    entries = []
    nodes_per_core: dict = {"threaded": {}, "process": {}}
    for n in sizes:
        for driver, runner in (
            ("threaded", run_scenario_threaded),
            ("process", run_scenario_process),
        ):
            spec = _live_spec(n, spec_seconds)
            gc.collect()
            cpu0 = cpu_now()
            t0 = time.perf_counter()
            report = runner(spec)
            wall = time.perf_counter() - t0
            cpu = cpu_now() - cpu0
            utilization = cpu / wall if wall else 0.0
            per_core = round(n / utilization, 1) if utilization else None
            row = {
                "driver": driver,
                "n_nodes": n,
                "spec_seconds": spec_seconds,
                "wall_seconds": round(wall, 4),
                "cpu_seconds": round(cpu, 4),
                "utilization": round(utilization, 3),
                "nodes_per_core": per_core,
                "delivered_total": report.delivered_total,
            }
            if driver == "process":
                row["n_workers"] = report.n_workers
            entries.append(row)
            nodes_per_core[driver][str(n)] = per_core
            print(
                f"live n={n:4d}  {driver:8s} {wall:6.2f}s wall  "
                f"{cpu:6.2f}s cpu  util {utilization:5.2f}  "
                f"nodes/core {per_core}"
            )
    return {
        "gossip_period_wall_s": 0.1,
        "entries": entries,
        "nodes_per_core": nodes_per_core,
    }


def micro_timings() -> dict:
    """Hot-path micro timings (µs/op, best of 5 runs).

    ``buffer_snapshot`` measures the steady-state cache hit;
    ``buffer_snapshot_rebuild`` the forced full rebuild it replaced.
    ``receive_180_duplicates`` measures the batched columnar fold;
    ``..._reference`` the seed's per-event loop on the same message.
    """
    setup = """
import random
from repro.gossip.buffer import EventBuffer
from repro.gossip.config import SystemConfig
from repro.gossip.events import EventId
from repro.gossip.lpbcast import LpbcastProtocol
from repro.membership.full import Directory, FullMembershipView

buf = EventBuffer(180)
for i in range(180):
    buf.add(EventId(i % 60, i), age=i % 10)
buf.snapshot_columns()  # prime the cache
counter = iter(range(10**9))

# max_age high enough that the timed rounds never age the buffer out
config = SystemConfig(buffer_capacity=180, dedup_capacity=400_000, max_age=10**9)
directory = Directory(range(60))
proto = LpbcastProtocol(0, config, FullMembershipView(directory, 0), random.Random(1))
for i in range(180):
    proto.broadcast(None, now=0.0)
clock = iter(x * 1.0 for x in range(1, 10**9))
message = proto.on_round(1.0)[0].message  # columnar, 180 events
receiver = LpbcastProtocol(1, config, FullMembershipView(directory, 1), random.Random(2))
receiver.on_receive(message, now=0.5)  # prime: all duplicates afterwards
reference = LpbcastProtocol(2, config, FullMembershipView(directory, 2), random.Random(3))
reference.on_receive_reference(message, now=0.5)
"""
    cases = {
        "buffer_add_evict": "buf.add(EventId('b', next(counter)), age=0)",
        "buffer_snapshot": "buf.snapshot_columns()",
        "buffer_snapshot_rebuild": "buf.snapshot_columns(refresh=True)",
        "buffer_sync_age_raise": "buf.sync_age(EventId(0, 0), buf.age_of(EventId(0, 0)) + 1)",
        "round_batch_180ev": "proto.on_round_batch(next(clock))",
        "receive_180_duplicates": "receiver.on_receive(message, now=1.0)",
        "receive_180_duplicates_reference": (
            "reference.on_receive_reference(message, now=1.0)"
        ),
    }
    out = {}
    for name, stmt in cases.items():
        timer = timeit.Timer(stmt, setup=setup)
        number = 2000
        best = min(timer.repeat(repeat=5, number=number)) / number
        out[f"{name}_us"] = round(best * 1e6, 3)
    return out


def scenario_overhead(n_nodes: int, duration: float) -> dict:
    """Guard: the declarative scenario layer must cost construction time
    only — its per-round hot path is the same cluster the direct build
    drives. Runs the bench regime once built directly and once lowered
    from a ScenarioSpec, demands byte-identical runs, and reports the
    wall ratio (≈1.0) plus spec build/lower micro timings."""
    from repro.experiments.harness import build_cluster, spec_for_scenario
    from repro.scenarios.spec import FixedLinks, ScenarioSpec, SenderSpec

    fanout = max(4, round(math.log2(n_nodes)))
    spec = ScenarioSpec(
        name="bench-core",
        summary="the dispatch benchmark regime, as a scenario",
        n_nodes=n_nodes,
        protocol="lpbcast",
        system=SystemConfig(
            fanout=fanout,
            gossip_period=1.0,
            buffer_capacity=30,
            dedup_capacity=max(4000, 8 * n_nodes),
            max_age=8,
            round_jitter=0.0,
            round_phase=0.0,
        ),
        topology=FixedLinks(0.01),
        senders=(SenderSpec(0, 0.5), SenderSpec(n_nodes // 2, 0.5)),
        duration=duration,
        warmup=0.0,
        drain=0.0,
        seed=2003,
    )

    def run_direct() -> tuple[float, tuple]:
        cluster = build(n_nodes, "batched")
        gc.collect()
        t0 = time.perf_counter()
        cluster.run(until=duration)
        return time.perf_counter() - t0, fingerprint(cluster)

    def run_scenario() -> tuple[float, tuple]:
        cluster = build_cluster(spec_for_scenario(spec, sample_gauges=False))
        gc.collect()
        t0 = time.perf_counter()
        cluster.run(until=duration)
        return time.perf_counter() - t0, fingerprint(cluster)

    direct_wall, direct_fp = min(run_direct() for _ in range(2))
    scenario_wall, scenario_fp = min(run_scenario() for _ in range(2))
    if direct_fp != scenario_fp:
        raise SystemExit(
            "scenario-built cluster diverged from the direct build: "
            "the scenario layer is not free"
        )
    lower_us = min(
        timeit.repeat(lambda: spec_for_scenario(spec), repeat=5, number=200)
    ) / 200 * 1e6
    return {
        "n_nodes": n_nodes,
        "virtual_seconds": duration,
        "direct_wall_seconds": round(direct_wall, 4),
        "scenario_wall_seconds": round(scenario_wall, 4),
        "scenario_vs_direct_ratio": round(scenario_wall / direct_wall, 3),
        "spec_lower_us": round(lower_us, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="*", default=[250, 500, 1000])
    parser.add_argument(
        "--mega-sizes",
        type=int,
        nargs="*",
        default=[10_000, 50_000],
        help="node counts for the vector-dispatch mega_scaling tier "
        "(pass nothing after the flag to skip the tier)",
    )
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument(
        "--chaos-size",
        type=int,
        default=10_000,
        help="node count for the faulted mega_chaos tier (0 skips the tier)",
    )
    parser.add_argument(
        "--parallel-sizes",
        type=int,
        nargs="*",
        default=[100_000],
        help="node counts for the sharded mega_parallel tier "
        "(pass nothing after the flag to skip the tier)",
    )
    parser.add_argument(
        "--parallel-shards",
        type=int,
        default=2,
        help="worker count for the mega_parallel tier (default 2)",
    )
    parser.add_argument(
        "--giga-size",
        type=int,
        default=1_000_000,
        help="node count for the one-shot aggregate-only completion run "
        "in the mega_parallel tier (0 skips it)",
    )
    parser.add_argument(
        "--process-sizes",
        type=int,
        nargs="*",
        default=[32, 64],
        help="group sizes for the live-driver process_scaling tier "
        "(pass nothing after the flag to skip the tier)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (defaults to BENCH_core.json for full runs; "
        "quick runs only write when --out is given, e.g. the CI smoke job)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="n=100, short horizon (CI smoke)"
    )
    args = parser.parse_args(argv)
    sizes = [100] if args.quick else args.sizes
    mega_sizes = [2000] if args.quick else args.mega_sizes
    duration = 20.0 if args.quick else args.duration
    chaos_size = 2000 if args.quick else args.chaos_size
    # batched at 10k is the denominator; cap the chaos horizon so the
    # four per-node reference runs don't dominate the whole bench
    chaos_duration = min(duration, 30.0)

    scaling = []
    speedups = {}
    for n in sizes:
        timers = run_one(n, "timers", duration)
        batched = run_one(n, "batched", duration)
        if timers.pop("_fingerprint") != batched.pop("_fingerprint"):
            raise SystemExit(f"dispatch modes diverged at n={n}: benchmark invalid")
        speedup = timers["wall_seconds"] / batched["wall_seconds"]
        speedups[str(n)] = round(speedup, 3)
        scaling.extend([timers, batched])
        print(
            f"n={n:5d}  timers {timers['wall_seconds']:7.2f}s "
            f"({timers['heap_events']} events)  batched "
            f"{batched['wall_seconds']:7.2f}s ({batched['heap_events']} events)  "
            f"speedup {speedup:.2f}x"
        )

    mega = run_mega(mega_sizes, duration) if mega_sizes else None
    if mega is not None:
        # the tier's headline claim: 10k nodes under vector dispatch cost
        # less wall time than 1000 under batched, in the same process
        ref = max(
            (r for r in scaling if r["dispatch"] == "batched"),
            key=lambda r: r["n_nodes"],
            default=None,
        )
        vec = min(
            (r for r in mega["entries"] if r["dispatch"] == "vector"),
            key=lambda r: r["n_nodes"],
        )
        if ref is not None:
            mega["vector_vs_batched_smaller_n"] = {
                "batched_n": ref["n_nodes"],
                "batched_wall_seconds": ref["wall_seconds"],
                "vector_n": vec["n_nodes"],
                "vector_wall_seconds": vec["wall_seconds"],
            }
            print(
                f"mega headline: n={vec['n_nodes']} vector "
                f"{vec['wall_seconds']:.2f}s vs n={ref['n_nodes']} batched "
                f"{ref['wall_seconds']:.2f}s"
            )

    chaos = run_chaos(chaos_size, chaos_duration) if chaos_size else None

    parallel_sizes = [2000] if args.quick else args.parallel_sizes
    giga_size = 0 if args.quick else args.giga_size
    parallel = (
        run_parallel(
            parallel_sizes,
            # cap as chaos does: 100k virtual minutes would dominate the bench
            min(duration, 30.0),
            shards=max(2, args.parallel_shards),
            giga_size=giga_size,
            giga_duration=8.0,
        )
        if parallel_sizes
        else None
    )

    process_sizes = [16] if args.quick else args.process_sizes
    process = (
        run_process_tier(process_sizes, spec_seconds=8.0 if args.quick else 12.0)
        if process_sizes
        else None
    )

    micro = micro_timings()
    for name, value in micro.items():
        print(f"micro {name:28s} {value:9.3f} us")

    overhead = scenario_overhead(min(sizes), duration)
    print(
        f"scenario overhead n={overhead['n_nodes']}: direct "
        f"{overhead['direct_wall_seconds']:.3f}s vs scenario "
        f"{overhead['scenario_wall_seconds']:.3f}s "
        f"(ratio {overhead['scenario_vs_direct_ratio']:.3f}, "
        f"spec lowering {overhead['spec_lower_us']:.1f} us)"
    )

    doc = {
        "benchmark": "core-dispatch",
        # comparable-schema tag: full runs and --quick smoke runs emit the
        # same shape, so compare_bench.py can diff any two documents
        # (CI's bench-regression step diffs the smoke JSON against the
        # checked-in BENCH_core.json reference)
        "schema": "bench-core/v2",
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scenario": {
            "protocol": "lpbcast",
            "round_synchronous": True,
            "latency": "constant 10ms",
            "buffer_capacity": 30,
            "senders": 2,
            "offered_load_msgs_per_s": 1.0,
            "fanout": "max(4, log2(n))",
        },
        "scaling": scaling,
        "mega_scaling": mega,
        "mega_chaos": chaos,
        "mega_parallel": parallel,
        "process_scaling": process,
        "speedup_batched_vs_timers": speedups,
        "micro_hot_paths": micro,
        "scenario_overhead": overhead,
        # PR 1's recorded numbers for the same scenario, kept so the
        # hot-path trajectory stays visible across PRs.
        "baseline_pr1": _PR1_BASELINE,
        "speedup_vs_pr1": _vs_pr1(scaling, micro),
    }
    out_path = args.out
    if out_path is None and not args.quick:
        out_path = str(ROOT / "BENCH_core.json")
    if out_path is not None:
        out = pathlib.Path(out_path)
        out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {out}")
    return 0


_PR1_BASELINE = {
    "batched_wall_seconds": {"250": 0.4892, "500": 1.1881, "1000": 2.9958},
    "micro_hot_paths": {
        "buffer_snapshot_us": 50.665,
        "receive_180_duplicates_us": 34.879,
    },
}


def _vs_pr1(scaling: list, micro: dict) -> dict:
    """End-to-end and micro speedups against PR 1's recorded numbers."""
    out: dict = {}
    baseline = _PR1_BASELINE["batched_wall_seconds"]
    for row in scaling:
        key = str(row["n_nodes"])
        if row["dispatch"] == "batched" and key in baseline:
            out[f"batched_{key}"] = round(baseline[key] / row["wall_seconds"], 3)
    for name, value in _PR1_BASELINE["micro_hot_paths"].items():
        if name in micro and micro[name]:
            out[name] = round(value / micro[name], 3)
    return out


if __name__ == "__main__":
    raise SystemExit(main())
