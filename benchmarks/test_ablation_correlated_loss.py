"""Ablation — the §5 caveat: correlated loss is not a congestion signal.

The paper admits that "network congestion also results in correlated
message loss thus degrading reliability. This is a potential weakness of
the approach". The reason: the mechanism's signal is the *age of dropped
events in buffers* — datagram loss removes events before they ever reach
a buffer, so a loss burst does not depress ``avgAge`` and the senders do
not slow down.

This benchmark measures the caveat on the registry's ``correlated-loss``
scenario (the same spec the CLI, determinism tests and docs use): a
heavy loss window hits a healthy adaptive group; reliability craters
*during* the window while the allowed rate barely moves — and recovers
immediately after, because the mechanism never mistook the loss for
congestion (no spurious throttling). Both halves matter: the signal is
blind to loss, and it is *robust* against loss.
"""

from repro.experiments.report import render_table
from repro.metrics.delivery import analyze_delivery
from repro.scenarios.registry import get_scenario
from repro.workload.cluster import SimCluster


def test_ablation_correlated_loss(benchmark, profile, emit):
    spec = get_scenario("correlated-loss", profile)
    burst = spec.faults.faults[0]
    burst_end = burst.time + burst.duration
    d = spec.duration

    def run():
        cluster = SimCluster.from_scenario(spec)
        cluster.run(until=d)
        m = cluster.metrics
        senders = list(spec.sender_ids)
        rows = []
        for label, (t0, t1) in [
            ("before burst", (0.25 * d, burst.time)),
            ("during burst", (burst.time, burst_end)),
            ("after burst", (burst_end + 0.1 * d, 0.9 * d)),
        ]:
            stats = analyze_delivery(m.messages_in_window(t0, t1), cluster.group_size)
            allowed = m.gauge_mean_over("allowed_rate", senders, t0, t1) * len(senders)
            rows.append(
                (label, allowed, m.admitted.rate(t0, t1), stats.avg_receiver_pct,
                 stats.atomicity_pct)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_correlated_loss",
        render_table(
            ["phase", "allowed (msg/s)", "input (msg/s)", "avg recv (%)", "atomicity (%)"],
            rows,
            title=(
                f"Ablation — §5 caveat: {burst.p:.0%} loss burst "
                f"(t={burst.time:.0f}..{burst_end:.0f}s), healthy load"
            ),
            digits=1,
        ),
    )
    by_phase = {r[0]: r for r in rows}
    before, during, after = (
        by_phase["before burst"],
        by_phase["during burst"],
        by_phase["after burst"],
    )
    # reliability craters during the burst — the paper's admitted weakness
    assert during[4] < before[4] - 20.0
    # ...while the grant barely reacts (loss is not read as congestion):
    # no spurious collapse of the allowed rate
    assert during[1] > 0.5 * before[1]
    # and the system is back to normal after the burst
    assert after[4] > before[4] - 10.0
