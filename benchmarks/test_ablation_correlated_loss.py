"""Ablation — the §5 caveat: correlated loss is not a congestion signal.

The paper admits that "network congestion also results in correlated
message loss thus degrading reliability. This is a potential weakness of
the approach". The reason: the mechanism's signal is the *age of dropped
events in buffers* — datagram loss removes events before they ever reach
a buffer, so a loss burst does not depress ``avgAge`` and the senders do
not slow down.

This benchmark measures the caveat: a heavy loss window hits a healthy
adaptive group; reliability craters *during* the window while the
allowed rate barely moves — and recovers immediately after, because the
mechanism never mistook the loss for congestion (no spurious
throttling). Both halves matter: the signal is blind to loss, and it is
*robust* against loss.
"""

import math

from repro.core.config import AdaptiveConfig
from repro.experiments.report import render_table
from repro.gossip.config import SystemConfig
from repro.metrics.delivery import analyze_delivery
from repro.sim.faults import FaultScript
from repro.workload.cluster import SimCluster


def test_ablation_correlated_loss(benchmark, profile, emit):
    big = profile.buffer_sizes[-1]
    burst_start, burst_len = 120.0, 40.0
    duration = 280.0

    def run():
        cluster = SimCluster(
            n_nodes=profile.n_nodes,
            system=SystemConfig(
                buffer_capacity=big,
                dedup_capacity=profile.dedup_capacity,
                max_age=profile.max_age,
            ),
            protocol="adaptive",
            adaptive=AdaptiveConfig(age_critical=profile.tau_hint, initial_rate=8.0),
            seed=profile.seed,
        )
        senders = profile.sender_ids()
        # load comfortably inside capacity so loss is the only stressor
        cluster.add_senders(senders, rate_each=0.5 * big / len(senders))
        FaultScript().loss(burst_start, burst_len, 0.75).apply(
            cluster.sim, cluster.network
        )
        cluster.run(until=duration)
        m = cluster.metrics
        rows = []
        for label, (t0, t1) in [
            ("before burst", (80.0, burst_start)),
            ("during burst", (burst_start, burst_start + burst_len)),
            ("after burst", (burst_start + burst_len + 20.0, duration - 20.0)),
        ]:
            stats = analyze_delivery(m.messages_in_window(t0, t1), cluster.group_size)
            allowed = m.gauge_mean_over("allowed_rate", senders, t0, t1) * len(senders)
            rows.append(
                (label, allowed, m.admitted.rate(t0, t1), stats.avg_receiver_pct,
                 stats.atomicity_pct)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_correlated_loss",
        render_table(
            ["phase", "allowed (msg/s)", "input (msg/s)", "avg recv (%)", "atomicity (%)"],
            rows,
            title=(
                "Ablation — §5 caveat: 75% loss burst "
                f"(t={burst_start:.0f}..{burst_start + burst_len:.0f}s), healthy load"
            ),
            digits=1,
        ),
    )
    by_phase = {r[0]: r for r in rows}
    before, during, after = (
        by_phase["before burst"],
        by_phase["during burst"],
        by_phase["after burst"],
    )
    # reliability craters during the burst — the paper's admitted weakness
    assert during[4] < before[4] - 20.0
    # ...while the grant barely reacts (loss is not read as congestion):
    # no spurious collapse of the allowed rate
    assert during[1] > 0.5 * before[1]
    # and the system is back to normal after the burst
    assert after[4] > before[4] - 10.0