"""Ablation — semantic purging [11] alone, adaptation alone, and both.

§5 cites PSRM [11] as a complementary technique: purge *obsolete*
events (superseded updates to the same key) so that overload reliability
concentrates on fresh information. The workload here is keyed updates —
every message supersedes the previous one for its key.

Metrics:

* **classic atomicity** — share of *all* updates reaching >95% of nodes
  (what Figure 8(b) measures); semantic purging deliberately sacrifices
  this for old updates;
* **staleness** — at the end of the window, how old (in seconds, by
  admission time) is the newest update of each key that each node has
  delivered. This is what a keyed application actually experiences.

Measured story (see the emitted table): purging lifts classic atomicity
roughly 30-fold at the *full* offered rate by freeing buffers from
superseded updates, and — because the buffers stop overflowing — the
congestion signal correctly reads "uncongested", so the composed variant
does not throttle: semantics *dissolves* this overload rather than
surviving it, exactly the complementarity §5 suggests. Adaptation
reaches the highest atomicity but admits only a third of the load; and
staleness stays sub-second for every variant at this update frequency —
the win of purging is delivering updates *to everyone*, not faster.
"""

from repro.core.config import AdaptiveConfig
from repro.core.semantics import AdaptiveSemanticLpbcastProtocol
from repro.experiments.report import render_table
from repro.gossip.config import SystemConfig
from repro.gossip.semantics import SemanticLpbcastProtocol
from repro.metrics.delivery import analyze_delivery
from repro.workload.cluster import SimCluster

N_KEYS = 24


def make_factory(variant, adaptive):
    def factory(node_id, system, membership, rng, deliver_fn, drop_fn, now):
        if variant == "semantic":
            return SemanticLpbcastProtocol(
                node_id, system, membership, rng, deliver_fn, drop_fn
            )
        return AdaptiveSemanticLpbcastProtocol(
            node_id,
            system,
            membership,
            rng,
            adaptive=adaptive,
            deliver_fn=deliver_fn,
            drop_fn=drop_fn,
            now=now,
        )

    return factory


def mean_staleness(metrics, admitted_log, group_size, w0, w1):
    """Mean over (node, key) of the age of the newest delivered update.

    Receiver sets accumulate over the whole run, so an update delivered
    shortly *after* the window still counts as fresh; the approximation
    is identical across variants and cancels in the comparison.
    """
    per_key: dict = {}
    for event_id, payload, t in admitted_log:
        if t < w1:
            per_key.setdefault(payload[0], []).append((t, event_id))
    total = 0.0
    count = 0
    cap = w1 - w0
    for key, updates in per_key.items():
        updates.sort(reverse=True)  # newest first
        fresh: set = set()
        for t, event_id in updates:
            record = metrics.messages.get(event_id)
            if record is None:
                continue
            for node in record.receivers:
                if node not in fresh:
                    fresh.add(node)
                    total += min(cap, w1 - t)
                    count += 1
            if len(fresh) >= group_size:
                break
        total += (group_size - len(fresh)) * cap
        count += group_size - len(fresh)
    return total / count if count else float("nan")


def run_variant(profile, variant):
    small = profile.buffer_sizes[0]
    adaptive = AdaptiveConfig(age_critical=profile.tau_hint, initial_rate=10.0)
    protocol = {
        "lpbcast": "lpbcast",
        "adaptive": "adaptive",
        "semantic": make_factory("semantic", adaptive),
        "adaptive+semantic": make_factory("both", adaptive),
    }[variant]
    cluster = SimCluster(
        n_nodes=profile.n_nodes,
        system=SystemConfig(
            buffer_capacity=small,
            dedup_capacity=profile.dedup_capacity,
            max_age=profile.max_age,
        ),
        protocol=protocol,
        adaptive=adaptive,
        seed=profile.seed,
    )
    senders = profile.sender_ids()
    admitted_log: list[tuple] = []  # (event_id, payload, time)
    for offset, node_id in enumerate(senders):
        cluster.add_sender(
            node_id,
            rate=profile.offered_load / len(senders),
            payload_fn=lambda seq, _o=offset: ((seq * len(senders) + _o) % N_KEYS, seq),
        )
        proto = cluster.protocol_of(node_id)
        original = proto.try_broadcast

        def recording(payload, now, _orig=original):
            event_id = _orig(payload, now)
            if event_id is not None:
                admitted_log.append((event_id, payload, now))
            return event_id

        proto.try_broadcast = recording
    cluster.run(until=profile.duration)

    w0, w1 = profile.measure_window
    m = cluster.metrics
    classic = analyze_delivery(m.messages_in_window(w0, w1), cluster.group_size)
    staleness = mean_staleness(m, admitted_log, cluster.group_size, w0, w1)
    return (
        m.admitted.rate(w0, w1),
        classic.atomicity_pct,
        staleness,
        m.drops_obsolete.count(w0, w1),
    )


def test_ablation_semantics(benchmark, profile, emit):
    def sweep():
        return [
            (variant, *run_variant(profile, variant))
            for variant in ("lpbcast", "semantic", "adaptive", "adaptive+semantic")
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_semantics",
        render_table(
            [
                "variant",
                "input (msg/s)",
                "atomicity (%)",
                "staleness (s)",
                "obsolete drops",
            ],
            rows,
            title=(
                "Ablation — [11] semantic purging vs adaptation "
                f"(keyed updates over {N_KEYS} keys, overloaded smallest buffer)"
            ),
            digits=2,
        ),
    )
    by_name = {r[0]: r for r in rows}
    base = by_name["lpbcast"]
    semantic = by_name["semantic"]
    adaptive = by_name["adaptive"]
    both = by_name["adaptive+semantic"]
    # purging actually happened
    assert semantic[4] > 0 and both[4] > 0
    # purging lifts classic atomicity substantially at the FULL input
    # rate (no throttling involved)
    assert semantic[1] > 0.9 * base[1]
    assert semantic[2] > base[2] + 15.0
    # adaptation rescues classic atomicity hardest, but throttles
    assert adaptive[2] > semantic[2] + 20.0
    assert adaptive[1] < 0.6 * base[1]
    # with purging the buffers stop overflowing, so the adaptive layer
    # correctly reads the system as uncongested and does not throttle,
    # keeping purging's atomicity level
    assert both[1] > 0.9 * base[1]
    assert both[2] > base[2] + 15.0
    # staleness stays bounded for every variant at this update frequency
    for row in rows:
        assert row[3] < 2.0