"""Compare a bench_core JSON document against a reference.

CI's bench-regression step runs this after the bench-smoke job::

    python benchmarks/compare_bench.py bench-core-quick.json BENCH_core.json

Three sections are compared. ``micro_hot_paths``: micro timings are
size-independent, so a ``--quick`` smoke document (n=100) is directly
comparable to the full checked-in reference (n=250..1000), while the
end-to-end wall times are not (different node counts, different
machines). ``mega_chaos``: the per-scenario vector-vs-batched speedup
ratios, compared only when both documents ran the tier at the same
node count (informational otherwise — a smoke-sized ratio against the
full reference would measure scale, not drift). ``mega_parallel``: the
sharded-vs-single-core speedup per node count, compared only at equal
shard and host core counts. Every comparison whose
current/reference ratio exceeds
``--threshold`` (default 1.5x) produces a warning — emitted as a GitHub
Actions ``::warning::`` annotation when running under CI — but the exit
code stays 0 unless ``--fail`` is passed: CI machines are noisy, so
bench regressions warn rather than gate (hard micro gates live in
``benchmarks/test_micro_hotpaths.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

#: Micro timings that are pure cache hits wobble by nanoseconds; skip
#: ratio talk below this floor to avoid "0.2us vs 0.3us = 1.5x" noise.
ABSOLUTE_FLOOR_US = 1.0


def compare_micro(
    current: dict, reference: dict, threshold: float
) -> tuple[list[str], list[str]]:
    """(report lines, regression warnings) for the micro sections."""
    cur = current.get("micro_hot_paths", {})
    ref = reference.get("micro_hot_paths", {})
    lines: list[str] = []
    warnings: list[str] = []
    for name in sorted(set(cur) & set(ref)):
        cur_us, ref_us = cur[name], ref[name]
        if not ref_us:
            continue
        ratio = cur_us / ref_us
        verdict = "ok"
        if ratio > threshold and cur_us > ABSOLUTE_FLOOR_US:
            verdict = "SLOWDOWN"
            warnings.append(
                f"micro {name} slowed {ratio:.2f}x over reference "
                f"({ref_us:.3f}us -> {cur_us:.3f}us, threshold {threshold:.2f}x)"
            )
        lines.append(
            f"  {name:36s} ref {ref_us:9.3f}us  cur {cur_us:9.3f}us  "
            f"ratio {ratio:5.2f}x  {verdict}"
        )
    missing = sorted(set(ref) - set(cur))
    for name in missing:
        lines.append(f"  {name:36s} missing from current document")
        warnings.append(f"micro {name} missing from current document")
    # the other direction is growth, not rot: a freshly added micro
    # benchmark has no reference yet, so note it and move on
    for name in sorted(set(cur) - set(ref)):
        lines.append(f"  {name:36s} new (no reference yet; informational)")
    return lines, warnings


def compare_chaos(
    current: dict, reference: dict, threshold: float
) -> tuple[list[str], list[str]]:
    """(report lines, warnings) for the ``mega_chaos`` speedup ratios.

    The tier's headline is the vector-vs-batched speedup per faulted
    scenario. Ratios are only comparable at equal node counts — a
    ``--quick`` document (n=2000) against the full reference (n=10000)
    would report the scale difference, not drift — so a size mismatch
    downgrades the whole section to informational. At matching sizes a
    speedup that shrank by more than ``threshold`` warns (same noisy-CI
    policy as the micro section: warn, don't gate).
    """
    cur_tier = current.get("mega_chaos") or {}
    ref_tier = reference.get("mega_chaos") or {}
    cur, ref = cur_tier.get("vector_vs_batched", {}), ref_tier.get(
        "vector_vs_batched", {}
    )
    lines: list[str] = []
    warnings: list[str] = []
    if not cur or not ref:
        return lines, warnings
    cur_n, ref_n = cur_tier.get("n_nodes"), ref_tier.get("n_nodes")
    comparable = cur_n == ref_n and cur_n is not None
    if not comparable:
        lines.append(
            f"  mega_chaos sizes differ (cur n={cur_n}, ref n={ref_n}); "
            "speedup ratios informational only"
        )
    for name in sorted(set(cur) & set(ref)):
        cur_x, ref_x = cur[name], ref[name]
        if not cur_x:
            continue
        drift = ref_x / cur_x  # >1 means the vector speedup shrank
        verdict = "ok" if comparable else "info"
        if comparable and drift > threshold:
            verdict = "SLOWDOWN"
            warnings.append(
                f"mega_chaos {name} vector speedup shrank {drift:.2f}x "
                f"({ref_x:.1f}x -> {cur_x:.1f}x, threshold {threshold:.2f}x)"
            )
        lines.append(
            f"  chaos {name:24s} ref {ref_x:6.1f}x  cur {cur_x:6.1f}x  {verdict}"
        )
    for name in sorted(set(ref) - set(cur)):
        lines.append(f"  chaos {name:24s} missing from current document")
        if comparable:
            warnings.append(f"mega_chaos {name} missing from current document")
    for name in sorted(set(cur) - set(ref)):
        lines.append(f"  chaos {name:24s} new (no reference yet; informational)")
    return lines, warnings


def compare_parallel(
    current: dict, reference: dict, threshold: float
) -> tuple[list[str], list[str]]:
    """(report lines, warnings) for the ``mega_parallel`` speedups.

    The tier's headline is the sharded-vs-single-core speedup per node
    count. The same warn-don't-gate policy applies, with two extra
    comparability screens: the shard counts must match (a 2-worker ratio
    against a 4-worker reference measures configuration, not drift), and
    so must the host core counts (``host_cpu_count`` rides in the tier
    precisely because a 1-core CI runner cannot reproduce a 16-core
    reference speedup). On first appearance — no ``mega_parallel`` in
    the reference — :func:`note_new_tiers` reports the whole tier
    informationally and this comparison is silent.
    """
    cur_tier = current.get("mega_parallel") or {}
    ref_tier = reference.get("mega_parallel") or {}
    cur = cur_tier.get("sharded_vs_single_core", {})
    ref = ref_tier.get("sharded_vs_single_core", {})
    lines: list[str] = []
    warnings: list[str] = []
    if not cur or not ref:
        return lines, warnings
    mismatches = [
        f"{field} differs (cur {cur_tier.get(field)}, ref {ref_tier.get(field)})"
        for field in ("shards", "host_cpu_count")
        if cur_tier.get(field) != ref_tier.get(field)
    ]
    comparable = not mismatches
    if not comparable:
        lines.append(
            "  mega_parallel " + "; ".join(mismatches) + "; speedups "
            "informational only"
        )
    for key in sorted(set(cur) & set(ref), key=int):
        cur_x, ref_x = cur[key], ref[key]
        if not cur_x:
            continue
        drift = ref_x / cur_x  # >1 means the sharded speedup shrank
        verdict = "ok" if comparable else "info"
        if comparable and drift > threshold:
            verdict = "SLOWDOWN"
            warnings.append(
                f"mega_parallel n={key} sharded speedup shrank {drift:.2f}x "
                f"({ref_x:.2f}x -> {cur_x:.2f}x, threshold {threshold:.2f}x)"
            )
        lines.append(
            f"  parallel n={key:>8s} ref {ref_x:6.2f}x  cur {cur_x:6.2f}x  {verdict}"
        )
    for key in sorted(set(ref) - set(cur), key=int):
        lines.append(f"  parallel n={key:>8s} missing from current document")
        if comparable:
            warnings.append(f"mega_parallel n={key} missing from current document")
    for key in sorted(set(cur) - set(ref), key=int):
        lines.append(f"  parallel n={key:>8s} new (no reference yet; informational)")
    return lines, warnings


def note_new_tiers(current: dict, reference: dict) -> list[str]:
    """Document sections present only in the newer JSON.

    Bench documents grow tiers over time (``mega_scaling`` arrived after
    ``scaling``); comparing a new document against an older reference
    must report those as *new*, never as drift — no warning, no nonzero
    exit. Scalar metadata (schema, python, machine) is skipped: only
    dict/list sections are tiers.
    """
    lines = []
    for key in sorted(set(current) - set(reference)):
        if isinstance(current[key], (dict, list)):
            lines.append(
                f"  new tier {key!r} in current document "
                "(no reference yet; informational)"
            )
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly produced bench_core JSON")
    parser.add_argument("reference", help="reference JSON (e.g. BENCH_core.json)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="warn when current/reference exceeds this ratio (default 1.5)",
    )
    parser.add_argument(
        "--fail",
        action="store_true",
        help="exit nonzero on regressions instead of warning only",
    )
    args = parser.parse_args(argv)

    current = json.loads(pathlib.Path(args.current).read_text(encoding="utf-8"))
    reference = json.loads(pathlib.Path(args.reference).read_text(encoding="utf-8"))
    for doc, path in ((current, args.current), (reference, args.reference)):
        schema = doc.get("schema")
        if schema is not None and not str(schema).startswith("bench-core/"):
            raise SystemExit(f"{path}: unexpected schema {schema!r}")

    lines, warnings = compare_micro(current, reference, args.threshold)
    print(f"bench comparison: {args.current} vs {args.reference}")
    print("\n".join(lines) if lines else "  (no comparable micro benchmarks)")
    chaos_lines, chaos_warnings = compare_chaos(current, reference, args.threshold)
    if chaos_lines:
        print("\n".join(chaos_lines))
    warnings.extend(chaos_warnings)
    parallel_lines, parallel_warnings = compare_parallel(
        current, reference, args.threshold
    )
    if parallel_lines:
        print("\n".join(parallel_lines))
    warnings.extend(parallel_warnings)
    for line in note_new_tiers(current, reference):
        print(line)
    annotate = os.environ.get("GITHUB_ACTIONS") == "true"
    for warning in warnings:
        print(f"::warning ::{warning}" if annotate else f"WARNING: {warning}")
    if warnings:
        print(f"{len(warnings)} regression warning(s) at {args.threshold:.2f}x")
    else:
        print(f"no micro benchmark slower than {args.threshold:.2f}x the reference")
    return 1 if warnings and args.fail else 0


if __name__ == "__main__":
    sys.exit(main())
