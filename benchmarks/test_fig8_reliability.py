"""Figure 8 — reliability: average receivers (a) and atomicity (b).

Paper: as buffers shrink below what the offered load needs, lpbcast's
average-receiver percentage degrades and its atomicity (share of
messages reaching >95% of nodes) collapses, "thus failing to meet
bimodal guarantees"; the adaptive variant keeps both roughly flat.
"""

from conftest import shared

from repro.experiments.figures import buffer_sweep_comparison, figure8
from repro.experiments.report import render_table


def test_fig8_reliability(benchmark, profile, emit):
    sweep = benchmark.pedantic(
        lambda: shared(("sweep", profile.name), lambda: buffer_sweep_comparison(profile)),
        rounds=1,
        iterations=1,
    )
    result = figure8(profile, sweep)

    table = render_table(
        [
            "buffer",
            "avg recv lpb (%)",
            "avg recv adpt (%)",
            "atomicity lpb (%)",
            "atomicity adpt (%)",
        ],
        [
            (
                r.buffer_capacity,
                r.avg_receiver_pct_lpbcast,
                r.avg_receiver_pct_adaptive,
                r.atomicity_pct_lpbcast,
                r.atomicity_pct_adaptive,
            )
            for r in result.rows
        ],
        title=(
            f"Figure 8(a,b) — reliability degradation, offered "
            f"{profile.offered_load:.0f} msg/s ({profile.name} profile)"
        ),
        digits=1,
    )
    emit("figure8", table)

    rows = sorted(result.rows, key=lambda r: r.buffer_capacity)
    smallest, largest = rows[0], rows[-1]
    # (a) the adaptive average-receivers curve stays flat and high...
    for row in rows:
        assert row.avg_receiver_pct_adaptive > 93.0
    # ...while lpbcast degrades markedly at the smallest buffers.
    assert smallest.avg_receiver_pct_lpbcast < 92.0
    assert largest.avg_receiver_pct_lpbcast > 97.0
    # (b) atomicity: sharp collapse for lpbcast, preserved for adaptive.
    assert smallest.atomicity_pct_lpbcast < 40.0
    assert smallest.atomicity_pct_adaptive > 70.0
    assert (
        smallest.atomicity_pct_adaptive
        > smallest.atomicity_pct_lpbcast + 30.0
    )
    # with ample buffers the two coincide (nothing to adapt away).
    assert abs(largest.atomicity_pct_lpbcast - largest.atomicity_pct_adaptive) < 10.0
