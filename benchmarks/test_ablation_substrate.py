"""Ablation — substrate generality (§5).

The paper claims the mechanism applies to gossip algorithms generally.
This benchmark runs the same overload scenario over two structurally
different substrates — push gossip (lpbcast, Figure 1) and multicast +
anti-entropy (pbcast-style) — each with and without the adaptation, and
shows the same rescue on both. The bimodal pair runs with datagram loss
because on a loss-free network its optimistic push alone delivers
everything (buffers there exist for repair).
"""

from repro.core.config import AdaptiveConfig
from repro.experiments.report import render_table
from repro.gossip.config import SystemConfig
from repro.metrics.delivery import analyze_delivery
from repro.sim.network import BernoulliLoss
from repro.workload.cluster import SimCluster


def run_substrate(profile, protocol, loss_p):
    small = profile.buffer_sizes[0]
    cluster = SimCluster(
        n_nodes=profile.n_nodes,
        system=SystemConfig(
            buffer_capacity=small,
            dedup_capacity=profile.dedup_capacity,
            max_age=profile.max_age,
        ),
        protocol=protocol,
        adaptive=AdaptiveConfig(age_critical=profile.tau_hint, initial_rate=10.0),
        loss=BernoulliLoss(p=loss_p) if loss_p else None,
        seed=profile.seed,
    )
    senders = profile.sender_ids()
    cluster.add_senders(senders, rate_each=profile.offered_load / len(senders))
    cluster.run(until=profile.duration)
    w0, w1 = profile.measure_window
    stats = analyze_delivery(
        cluster.metrics.messages_in_window(w0, w1), cluster.group_size
    )
    return (
        cluster.metrics.admitted.rate(w0, w1),
        stats.avg_receiver_pct,
        stats.atomicity_pct,
        cluster.metrics.mean_drop_age(w0, w1),
    )


def test_ablation_substrate_generality(benchmark, profile, emit):
    def sweep():
        return [
            ("lpbcast", 0.0, *run_substrate(profile, "lpbcast", 0.0)),
            ("adaptive-lpbcast", 0.0, *run_substrate(profile, "adaptive", 0.0)),
            ("bimodal", 0.25, *run_substrate(profile, "bimodal", 0.25)),
            (
                "adaptive-bimodal",
                0.25,
                *run_substrate(profile, "adaptive-bimodal", 0.25),
            ),
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_substrate",
        render_table(
            ["substrate", "loss", "input (msg/s)", "avg recv (%)", "atomicity (%)", "drop age"],
            rows,
            title=(
                "Ablation — §5 substrate generality (overloaded smallest "
                f"buffer, offered {profile.offered_load:.0f} msg/s)"
            ),
            digits=2,
        ),
    )
    by_name = {r[0]: r for r in rows}
    for plain, adapted in (
        ("lpbcast", "adaptive-lpbcast"),
        ("bimodal", "adaptive-bimodal"),
    ):
        # the adaptation throttles input on both substrates...
        assert by_name[adapted][2] < by_name[plain][2] * 0.8
        # ...and lifts atomicity substantially on both.
        assert by_name[adapted][4] > by_name[plain][4] + 25.0
        # ...holding the drop age near tau instead of letting it collapse.
        assert by_name[adapted][5] > by_name[plain][5] + 1.0