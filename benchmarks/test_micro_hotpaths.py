"""Micro-benchmarks of the simulator's hot paths.

These are real timing benchmarks (pytest-benchmark does its usual
multi-round measurement): the per-round and per-receive costs bound how
large a simulated system the harness can afford, and the anchor-based
buffer justifies itself here (an O(n)-ageing buffer would dominate
every round).

The ``test_speedup_*`` tests are the acceptance gates of the
zero-rebuild hot path: they time the cached/batched paths against the
rebuild/reference paths *in the same process* and assert the floor
ratios (≥5x for the snapshot cache hit, ≥2x for batched duplicate
folding), so the optimisation cannot silently rot.
"""

import random
import timeit

from repro.gossip.buffer import EventBuffer
from repro.gossip.config import SystemConfig
from repro.gossip.events import EventColumns, EventId, EventSummary
from repro.gossip.lpbcast import LpbcastProtocol
from repro.gossip.protocol import GossipMessage
from repro.membership.full import Directory, FullMembershipView
from repro.runtime.codec import BinaryCodec


def make_filled_buffer(n=180):
    buf = EventBuffer(n)
    for i in range(n):
        buf.add(EventId(i % 60, i), age=i % 10)
    return buf


def test_micro_buffer_add_evict(benchmark):
    buf = make_filled_buffer(180)
    counter = iter(range(10**9))

    def add_one():
        buf.add(EventId("bench", next(counter)), age=0)

    benchmark(add_one)
    assert len(buf) == 180


def test_micro_buffer_advance_round(benchmark):
    buf = make_filled_buffer(180)
    benchmark(buf.advance_round)


def test_micro_buffer_snapshot_cache_hit(benchmark):
    buf = make_filled_buffer(180)
    buf.snapshot_columns()  # prime
    result = benchmark(buf.snapshot_columns)
    assert len(result) == 180


def test_micro_buffer_snapshot_rebuild(benchmark):
    buf = make_filled_buffer(180)
    result = benchmark(lambda: buf.snapshot_columns(refresh=True))
    assert len(result) == 180


def test_micro_buffer_sync_ages_no_raise(benchmark):
    """The steady-state duplicate fold: nothing actually raises."""
    buf = make_filled_buffer(180)
    columns = buf.snapshot_columns()
    raised = benchmark(lambda: buf.sync_ages(columns.ids, columns.ages))
    assert raised == 0


def test_micro_buffer_oldest_excluding(benchmark):
    buf = make_filled_buffer(180)
    exclude = {EventId(i % 60, i) for i in range(0, 180, 2)}
    result = benchmark(lambda: buf.oldest_excluding(20, exclude))
    assert len(result) == 20


def _protocol_pair():
    config = SystemConfig(buffer_capacity=180, dedup_capacity=4000)
    directory = Directory(range(60))
    sender = LpbcastProtocol(
        0, config, FullMembershipView(directory, 0), random.Random(1)
    )
    receiver = LpbcastProtocol(
        1, config, FullMembershipView(directory, 1), random.Random(2)
    )
    for i in range(180):
        sender.broadcast(None, now=0.0)
    return sender, receiver


def test_micro_round_emission(benchmark):
    sender, _ = _protocol_pair()
    clock = iter(x * 1.0 for x in range(1, 10**9))
    result = benchmark(lambda: sender.on_round(next(clock)))
    assert len(result) == 4


def test_micro_receive_full_message(benchmark):
    """Receive a 180-event gossip message (the dominating cost)."""
    config = SystemConfig(buffer_capacity=180, dedup_capacity=400_000)
    directory = Directory(range(60))
    receiver = LpbcastProtocol(
        1, config, FullMembershipView(directory, 1), random.Random(2)
    )
    counter = iter(range(10**9))

    def receive_fresh():
        base = next(counter) * 200
        message = GossipMessage(
            sender=0,
            events=tuple(
                EventSummary(EventId("src", base + i), i % 10, None)
                for i in range(180)
            ),
        )
        receiver.on_receive(message, now=1.0)

    benchmark(receive_fresh)


def test_micro_receive_all_duplicates(benchmark):
    sender, receiver = _protocol_pair()
    message = sender.on_round(1.0)[0].message
    assert isinstance(message.events, EventColumns)
    receiver.on_receive(message, now=1.0)  # prime: all known afterwards
    benchmark(lambda: receiver.on_receive(message, now=1.1))


def test_micro_receive_batch_all_duplicates(benchmark):
    """Ten coalesced 180-duplicate messages through on_receive_batch."""
    sender, receiver = _protocol_pair()
    message = sender.on_round(1.0)[0].message
    receiver.on_receive(message, now=1.0)
    messages = [message] * 10
    benchmark(lambda: receiver.on_receive_batch(messages, now=1.1))


# ----------------------------------------------------------------------
# acceptance gates: the zero-rebuild paths must stay decisively faster
# ----------------------------------------------------------------------
def _best(stmt, number, repeat=7):
    return min(timeit.repeat(stmt, number=number, repeat=repeat)) / number


def test_speedup_snapshot_cache_hit_vs_rebuild():
    buf = make_filled_buffer(180)
    buf.snapshot_columns()
    hit = _best(buf.snapshot_columns, number=5000)
    rebuild = _best(lambda: buf.snapshot_columns(refresh=True), number=1000)
    assert rebuild / hit >= 5.0, f"cache hit only {rebuild / hit:.1f}x faster"


def test_speedup_batched_duplicate_folding_vs_reference():
    config = SystemConfig(buffer_capacity=180, dedup_capacity=400_000)
    directory = Directory(range(60))
    sender = LpbcastProtocol(
        0, config, FullMembershipView(directory, 0), random.Random(1)
    )
    for _ in range(180):
        sender.broadcast(None, now=0.0)
    message = sender.on_round(1.0)[0].message
    batched = LpbcastProtocol(
        1, config, FullMembershipView(directory, 1), random.Random(2)
    )
    batched.on_receive(message, now=1.0)
    reference = LpbcastProtocol(
        2, config, FullMembershipView(directory, 2), random.Random(3)
    )
    reference.on_receive_reference(message, now=1.0)
    new = _best(lambda: batched.on_receive(message, 1.1), number=2000)
    ref = _best(lambda: reference.on_receive_reference(message, 1.1), number=2000)
    assert ref / new >= 2.0, f"batched fold only {ref / new:.1f}x faster"


def test_micro_codec_encode(benchmark):
    sender, _ = _protocol_pair()
    message = sender.on_round(1.0)[0].message
    codec = BinaryCodec()
    data = benchmark(lambda: codec.encode(message))
    assert len(data) > 100


def test_micro_codec_decode(benchmark):
    sender, _ = _protocol_pair()
    codec = BinaryCodec()
    data = codec.encode(sender.on_round(1.0)[0].message)
    message = benchmark(lambda: codec.decode(data))
    assert message.n_events == 180
