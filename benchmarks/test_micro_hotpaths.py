"""Micro-benchmarks of the simulator's hot paths.

These are real timing benchmarks (pytest-benchmark does its usual
multi-round measurement): the per-round and per-receive costs bound how
large a simulated system the harness can afford, and the anchor-based
buffer justifies itself here (an O(n)-ageing buffer would dominate
every round).
"""

import random

from repro.gossip.buffer import EventBuffer
from repro.gossip.config import SystemConfig
from repro.gossip.events import EventId, EventSummary
from repro.gossip.lpbcast import LpbcastProtocol
from repro.gossip.protocol import GossipMessage
from repro.membership.full import Directory, FullMembershipView
from repro.runtime.codec import BinaryCodec


def make_filled_buffer(n=180):
    buf = EventBuffer(n)
    for i in range(n):
        buf.add(EventId(i % 60, i), age=i % 10)
    return buf


def test_micro_buffer_add_evict(benchmark):
    buf = make_filled_buffer(180)
    counter = iter(range(10**9))

    def add_one():
        buf.add(EventId("bench", next(counter)), age=0)

    benchmark(add_one)
    assert len(buf) == 180


def test_micro_buffer_advance_round(benchmark):
    buf = make_filled_buffer(180)
    benchmark(buf.advance_round)


def test_micro_buffer_snapshot(benchmark):
    buf = make_filled_buffer(180)
    result = benchmark(buf.snapshot)
    assert len(result) == 180


def test_micro_buffer_oldest_excluding(benchmark):
    buf = make_filled_buffer(180)
    exclude = {EventId(i % 60, i) for i in range(0, 180, 2)}
    result = benchmark(lambda: buf.oldest_excluding(20, exclude))
    assert len(result) == 20


def _protocol_pair():
    config = SystemConfig(buffer_capacity=180, dedup_capacity=4000)
    directory = Directory(range(60))
    sender = LpbcastProtocol(
        0, config, FullMembershipView(directory, 0), random.Random(1)
    )
    receiver = LpbcastProtocol(
        1, config, FullMembershipView(directory, 1), random.Random(2)
    )
    for i in range(180):
        sender.broadcast(None, now=0.0)
    return sender, receiver


def test_micro_round_emission(benchmark):
    sender, _ = _protocol_pair()
    clock = iter(x * 1.0 for x in range(1, 10**9))
    result = benchmark(lambda: sender.on_round(next(clock)))
    assert len(result) == 4


def test_micro_receive_full_message(benchmark):
    """Receive a 180-event gossip message (the dominating cost)."""
    config = SystemConfig(buffer_capacity=180, dedup_capacity=400_000)
    directory = Directory(range(60))
    receiver = LpbcastProtocol(
        1, config, FullMembershipView(directory, 1), random.Random(2)
    )
    counter = iter(range(10**9))

    def receive_fresh():
        base = next(counter) * 200
        message = GossipMessage(
            sender=0,
            events=tuple(
                EventSummary(EventId("src", base + i), i % 10, None)
                for i in range(180)
            ),
        )
        receiver.on_receive(message, now=1.0)

    benchmark(receive_fresh)


def test_micro_receive_all_duplicates(benchmark):
    sender, receiver = _protocol_pair()
    message = sender.on_round(1.0)[0].message
    receiver.on_receive(message, now=1.0)  # prime: all known afterwards
    benchmark(lambda: receiver.on_receive(message, now=1.1))


def test_micro_codec_encode(benchmark):
    sender, _ = _protocol_pair()
    message = sender.on_round(1.0)[0].message
    codec = BinaryCodec()
    data = benchmark(lambda: codec.encode(message))
    assert len(data) > 100


def test_micro_codec_decode(benchmark):
    sender, _ = _protocol_pair()
    codec = BinaryCodec()
    data = codec.encode(sender.on_round(1.0)[0].message)
    message = benchmark(lambda: codec.decode(data))
    assert message.n_events == 180
