"""Figure 6 — offered, allowed and maximum rates vs buffer size.

Paper: with a constant offered load over a shrinking-buffer sweep, the
adaptive mechanism's *allowed* rate approximates the calibrated maximum
where the offered load exceeds capacity, and accepts the offered load
where it does not.
"""

import math

from conftest import shared

from repro.experiments.figures import buffer_sweep_comparison, figure6
from repro.experiments.report import render_table


def test_fig6_ideal_and_adaptive_rates(benchmark, profile, emit):
    sweep = benchmark.pedantic(
        lambda: shared(("sweep", profile.name), lambda: buffer_sweep_comparison(profile)),
        rounds=1,
        iterations=1,
    )
    result = figure6(profile, sweep)

    table = render_table(
        ["buffer (msgs)", "offered (msg/s)", "allowed (msg/s)", "maximum (msg/s)"],
        [(r.buffer_capacity, r.offered, r.allowed, r.maximum) for r in result.rows],
        title=f"Figure 6 — ideal and adaptive rates ({profile.name} profile)",
        digits=1,
    )
    emit("figure6", table)

    for row in result.rows:
        if math.isnan(row.maximum):
            continue
        if row.maximum < row.offered * 0.9:
            # Over capacity: the grant approximates the ideal maximum,
            # never exceeding it by much and staying within ~45% below
            # (the mechanism is deliberately conservative).
            assert row.allowed < row.maximum * 1.15
            assert row.allowed > row.maximum * 0.5
        elif row.maximum > row.offered * 1.25:
            # Clearly under capacity: the offered load is accepted
            # (grant hovers at/above offered, bounded by the decay rule).
            assert row.allowed > row.offered * 0.8
    # The allowed rate grows with buffer size until capacity suffices.
    allowed = [r.allowed for r in result.rows]
    assert allowed[1] > allowed[0] * 0.95
