"""Ablation — the §6 κ-smallest extension.

The paper's concluding remarks propose adapting to the κ-th smallest
buffer (optionally above a floor) "to prevent a single node from
affecting the performance of the whole group". This benchmark measures
exactly that trade: group throughput and group reliability vs the
straggler's own delivery completeness, for the plain minimum and the
two extensions.
"""

from repro.core.aggregation import KSmallestAggregate, ThresholdedKSmallestAggregate
from repro.core.config import AdaptiveConfig
from repro.experiments.report import render_table
from repro.gossip.config import SystemConfig
from repro.metrics.delivery import analyze_delivery
from repro.workload.cluster import SimCluster


def run_variant(profile, aggregate):
    big = profile.buffer_sizes[-1]
    tiny = max(8, profile.buffer_sizes[0] // 2)
    system = SystemConfig(
        buffer_capacity=big,
        dedup_capacity=profile.dedup_capacity,
        max_age=profile.max_age,
    )
    cluster = SimCluster(
        n_nodes=profile.n_nodes,
        system=system,
        protocol="adaptive",
        adaptive=AdaptiveConfig(age_critical=profile.tau_hint, initial_rate=10.0),
        aggregate=aggregate,
        seed=profile.seed,
    )
    senders = profile.sender_ids()
    cluster.add_senders(senders, rate_each=profile.offered_load / len(senders))
    straggler = profile.n_nodes - 1
    cluster.set_capacity(straggler, tiny)
    cluster.run(until=profile.duration)
    w0, w1 = profile.measure_window
    records = cluster.metrics.messages_in_window(w0, w1)
    stats = analyze_delivery(records, cluster.group_size)
    straggler_pct = 100.0 * sum(
        1 for r in records if straggler in r.receivers
    ) / max(1, len(records))
    return (
        cluster.metrics.admitted.rate(w0, w1),
        cluster.protocol_of(0).min_buff_estimate,
        stats.atomicity_pct,
        straggler_pct,
    )


def test_ablation_kmin(benchmark, profile, emit):
    def sweep():
        floor = profile.buffer_sizes[0]
        return [
            ("min (paper)", *run_variant(profile, None)),
            ("2nd-smallest", *run_variant(profile, KSmallestAggregate(2))),
            (
                f"2nd>=floor {floor}",
                *run_variant(profile, ThresholdedKSmallestAggregate(2, floor)),
            ),
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_kmin",
        render_table(
            ["aggregate", "input (msg/s)", "minBuff", "atomicity (%)", "straggler recv (%)"],
            rows,
            title="Ablation — §6 κ-smallest aggregation with one straggler",
            digits=1,
        ),
    )
    by_name = {r[0]: r for r in rows}
    plain = by_name["min (paper)"]
    kmin = by_name["2nd-smallest"]
    # The plain minimum throttles to protect the straggler completely.
    assert plain[4] > 95.0
    # κ=2 ignores the straggler: much higher group throughput...
    assert kmin[1] > plain[1] * 1.5
    # ...while group-level atomicity stays acceptable.
    assert kmin[3] > 70.0
