"""Figure 4 — maximum sustainable input rate vs buffer size.

This is the paper's §2.3 calibration: per buffer size, bisect the load
axis for the highest rate still delivering to ≥95% of members on
average, and record the drop age at that edge. Two shape claims:

* the maximum rate grows (roughly linearly) with the buffer size;
* the drop age at the edge is the *same* for all buffer sizes — the
  constant τ the whole adaptive mechanism rests on (5.3 in the paper).
"""

from repro.experiments.figures import figure4
from repro.experiments.report import render_table
from repro.metrics.stats import mean, stdev


def test_fig4_max_input_rate(benchmark, profile, emit):
    result = benchmark.pedantic(
        lambda: figure4(profile, iterations=5), rounds=1, iterations=1
    )

    table = render_table(
        ["buffer (msgs)", "max rate (msg/s)", "drop age @max", "reliability @max"],
        [
            (p.buffer_capacity, p.max_rate, p.drop_age_at_max, p.reliability_at_max)
            for p in result.points
        ],
        title=(
            f"Figure 4 — maximum input rate ({profile.name} profile); "
            f"tau = {result.tau:.2f} (paper: 5.3)"
        ),
        digits=2,
    )
    emit("figure4", table)

    points = sorted(result.points, key=lambda p: p.buffer_capacity)
    # Max rate strictly increases with buffer size.
    for a, b in zip(points, points[1:]):
        assert b.max_rate > a.max_rate
    # Roughly linear: rate per buffer slot varies less than 35% across the sweep.
    slopes = [p.max_rate / p.buffer_capacity for p in points]
    assert max(slopes) / min(slopes) < 1.35
    # The constant-τ observation: drop ages at the edge cluster tightly.
    ages = [p.drop_age_at_max for p in points]
    assert stdev(ages) / mean(ages) < 0.15
    # τ matches the profile's baked-in hint (which the other figures use).
    assert abs(result.tau - profile.tau_hint) / profile.tau_hint < 0.2
