"""Figure 7 — input rate (a), output rate (b), drop ages (c).

Paper: lpbcast's input equals the offered load regardless of capacity,
so its output (input − loss) falls behind at small buffers and the age
of dropped messages collapses; the adaptive variant's input equals its
output (nothing is lost) and its drop age stays pinned near τ.
"""

from conftest import shared

from repro.experiments.figures import buffer_sweep_comparison, figure7
from repro.experiments.report import render_table


def test_fig7_rates_and_ages(benchmark, profile, emit):
    sweep = benchmark.pedantic(
        lambda: shared(("sweep", profile.name), lambda: buffer_sweep_comparison(profile)),
        rounds=1,
        iterations=1,
    )
    result = figure7(profile, sweep)

    table = render_table(
        [
            "buffer",
            "in lpb",
            "in adpt",
            "out lpb",
            "out adpt",
            "dropage lpb",
            "dropage adpt",
        ],
        [
            (
                r.buffer_capacity,
                r.input_lpbcast,
                r.input_adaptive,
                r.output_lpbcast,
                r.output_adaptive,
                r.drop_age_lpbcast,
                r.drop_age_adaptive,
            )
            for r in result.rows
        ],
        title=(
            f"Figure 7(a,b,c) — rates and drop ages, offered "
            f"{profile.offered_load:.0f} msg/s ({profile.name} profile)"
        ),
        digits=1,
    )
    emit("figure7", table)

    rows = sorted(result.rows, key=lambda r: r.buffer_capacity)
    smallest, largest = rows[0], rows[-1]
    for row in rows:
        # (a) lpbcast never throttles: input == offered.
        assert abs(row.input_lpbcast - profile.offered_load) < 0.1 * profile.offered_load
        # (b) adaptive loses (almost) nothing: output tracks input.
        assert row.output_adaptive > row.input_adaptive * 0.93
    # (a) adaptive throttles below offered at the smallest buffer.
    assert smallest.input_adaptive < profile.offered_load * 0.75
    # (b) lpbcast loses a significant share at the smallest buffer.
    assert smallest.output_lpbcast < smallest.input_lpbcast * 0.9
    # (c) lpbcast's drop age collapses at small buffers; adaptive holds.
    assert smallest.drop_age_lpbcast < largest.drop_age_lpbcast * 0.6
    assert smallest.drop_age_adaptive > smallest.drop_age_lpbcast + 1.0
    assert smallest.drop_age_adaptive > profile.tau_hint - 1.0
