"""Figure 9 — adaptation to runtime buffer changes.

Paper: 20% of the nodes shrink their buffers (90 → 45) at t1 and grow
partially back (45 → 60) at t2, under a constant offered load that only
the initial configuration can sustain. Shown: (a) the allowed rate
steps to the per-phase "ideal" maxima; (b) atomicity is preserved by
the adaptive variant and lost by lpbcast. The §4 text adds that the
heterogeneous group beats a *homogeneous* group pinned at the minimum
(92% vs 87% at buffer 60) because untouched nodes keep their capacity.
"""

import math

from repro.experiments.figures import figure9
from repro.experiments.report import render_series, render_sparkline, render_table


def test_fig9_dynamic_buffers(benchmark, profile, emit):
    result = benchmark.pedantic(lambda: figure9(profile), rounds=1, iterations=1)

    phases = ("base", "low", "mid")
    summary = render_table(
        ["phase", "ideal max (msg/s)", "allowed (msg/s)", "atom adpt (%)", "atom lpb (%)"],
        [
            (
                f"{phases[i]} (buf {b})",
                result.ideal_rates[i],
                result.allowed_by_phase[i],
                100 * result.atomicity_adaptive_by_phase[i],
                100 * result.atomicity_lpbcast_by_phase[i],
            )
            for i, b in enumerate(
                (profile.fig9_base_buffer, profile.fig9_low_buffer, profile.fig9_mid_buffer)
            )
        ],
        title=(
            f"Figure 9 — dynamic buffers ({profile.name} profile; offered "
            f"{result.offered:.0f} msg/s; changes at t={result.t1:.0f}s, t={result.t2:.0f}s)"
        ),
        digits=1,
    )
    series = render_series(
        result.allowed_series,
        title="Figure 9(a) — total allowed rate over time",
        v_label="allowed (msg/s)",
        every=2,
        digits=1,
    )
    homo = (
        f"homogeneous-at-{profile.fig9_low_buffer} atomicity: "
        f"{100 * result.atomicity_homogeneous_low:.1f}% vs heterogeneous low-phase "
        f"{100 * result.atomicity_adaptive_by_phase[1]:.1f}% (paper: 87% vs 92%)"
    )
    spark = render_sparkline(
        result.allowed_series, title="Figure 9(a) — allowed rate sparkline"
    )
    emit("figure9", summary + "\n\n" + spark + "\n\n" + series + "\n\n" + homo)

    base, low, mid = result.allowed_by_phase
    # (a) the staircase: base > mid > low, tracking the ideal lines.
    assert base > mid > low
    for ideal, measured in zip(result.ideal_rates, result.allowed_by_phase):
        if math.isnan(ideal):
            continue
        assert measured < ideal * 1.2
        assert measured > ideal * 0.45
    # (b) adaptive atomicity stays up in every phase; lpbcast loses the
    # overloaded phases clearly.
    for atom in result.atomicity_adaptive_by_phase:
        assert atom > 0.75
    assert result.atomicity_lpbcast_by_phase[1] < result.atomicity_adaptive_by_phase[1] - 0.2
    # §4's heterogeneity observation: the mixed group does at least as
    # well as a homogeneous group pinned at the low buffer.
    assert (
        result.atomicity_adaptive_by_phase[1]
        >= result.atomicity_homogeneous_low - 0.05
    )
