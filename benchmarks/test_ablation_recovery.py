"""Ablation — prevention (this paper) vs recovery (related work [10]/[14]).

§5 contrasts the adaptive mechanism with recovery-based alternatives:
designated bufferers ([10]) or log servers ([14]) can repair omissions
*after the fact*, but "it is important to notice that the goal of our
adaptation mechanism is not to recover from past message omissions but
prevent future ones" (§6). This benchmark puts numbers on the contrast
under overload with datagram loss. Measured on this simulator (see the
emitted table): with full membership knowledge and enough pinned memory,
gap-triggered recovery reaches even *higher* completeness than
prevention — but pays exactly the costs the paper names: tens of
thousands of long-term-pinned events across the group and multi-fold
higher delivery latency ("possibly very large buffers at logging servers
and ... deliver some messages much later", §5). Prevention achieves its
reliability with zero extra memory and ordinary latency, and composes
with recovery if both are wanted.
"""

import math

from repro.core.config import AdaptiveConfig
from repro.experiments.report import render_table
from repro.gossip.config import SystemConfig
from repro.metrics.delivery import analyze_delivery
from repro.sim.network import BernoulliLoss
from repro.workload.cluster import SimCluster


def run_variant(profile, protocol):
    small = profile.buffer_sizes[0]
    cluster = SimCluster(
        n_nodes=profile.n_nodes,
        system=SystemConfig(
            buffer_capacity=small,
            dedup_capacity=profile.dedup_capacity,
            max_age=profile.max_age,
        ),
        protocol=protocol,
        adaptive=AdaptiveConfig(age_critical=profile.tau_hint, initial_rate=10.0),
        loss=BernoulliLoss(p=0.2),
        seed=profile.seed,
    )
    senders = profile.sender_ids()
    cluster.add_senders(senders, rate_each=profile.offered_load / len(senders))
    cluster.run(until=profile.duration)
    w0, w1 = profile.measure_window
    stats = analyze_delivery(
        cluster.metrics.messages_in_window(w0, w1), cluster.group_size
    )
    pinned = sum(
        len(getattr(node.protocol, "long_term", ()))
        for node in cluster.nodes.values()
    )
    return (
        cluster.metrics.admitted.rate(w0, w1),
        stats.avg_receiver_pct,
        stats.atomicity_pct,
        stats.mean_latency,
        pinned,
    )


def test_ablation_recovery_vs_prevention(benchmark, profile, emit):
    def sweep():
        return [
            ("bimodal (none)", *run_variant(profile, "bimodal")),
            ("bufferers [10]", *run_variant(profile, "bufferer-bimodal")),
            ("adaptive (paper)", *run_variant(profile, "adaptive-bimodal")),
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_recovery",
        render_table(
            [
                "strategy",
                "input (msg/s)",
                "avg recv (%)",
                "atomicity (%)",
                "latency (s)",
                "pinned events",
            ],
            rows,
            title=(
                "Ablation — recovery [10] vs prevention (overloaded smallest "
                "buffer, 20% datagram loss)"
            ),
            digits=2,
        ),
    )
    by_name = {r[0]: r for r in rows}
    none, rec, adpt = (
        by_name["bimodal (none)"],
        by_name["bufferers [10]"],
        by_name["adaptive (paper)"],
    )
    # Both strategies rescue reliability relative to doing nothing.
    assert rec[3] > none[3] + 30.0
    assert adpt[3] > none[3] + 30.0
    # Recovery pays with pinned long-term memory; prevention does not.
    assert rec[5] > 1000
    assert adpt[5] == 0
    # Recovery pays with late deliveries (the §5 critique of [14]);
    # prevention's latency stays ordinary.
    if not math.isnan(rec[4]) and not math.isnan(adpt[4]):
        assert rec[4] > 2.0 * adpt[4]
    # Prevention is the only one that actually relieves the system:
    # recovery keeps pushing the full offered load through it.
    assert adpt[1] < 0.6 * rec[1]
