"""Shared fixtures for the figure-regeneration benchmarks.

Every benchmark prints the paper-figure table it regenerates and also
writes it to ``benchmarks/out/<name>.txt`` so a benchmark session leaves
the full reproduced evaluation on disk. Scale comes from the profile
selected by ``REPRO_PROFILE`` (default ``quick``; ``paper`` runs the
60-node sweeps).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.profiles import get_profile

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def profile():
    return get_profile()


@pytest.fixture(scope="session")
def emit():
    """Print a rendered table and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _emit


# ----------------------------------------------------------------------
# shared, lazily-computed expensive results (one sweep feeds Figs 6/7/8)
# ----------------------------------------------------------------------
_CACHE: dict = {}


def shared(key, builder):
    """Session-wide memo for results reused across benchmarks."""
    if key not in _CACHE:
        _CACHE[key] = builder()
    return _CACHE[key]
